package report

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"chaffmec/internal/engine"
	"chaffmec/internal/rng"
)

// buildPart assembles a deterministic partial report covering the run
// range [start, end) of a toy 2-slot experiment: run r contributes the
// series [r, 2r] and the scalar r².
func buildPart(t *testing.T, start, end, total int) *Report {
	t.Helper()
	track := engine.NewSeriesStatsAt(2, start)
	sq := engine.NewScalarStatsAt(start)
	for r := start; r < end; r++ {
		if err := track.Add([]float64{float64(r), 2 * float64(r)}); err != nil {
			t.Fatal(err)
		}
		sq.Add(float64(r) * float64(r))
	}
	return &Report{
		Name: "toy", Kind: "single", Seed: 9, Horizon: 2,
		TotalRuns: total, RunStart: start, RunCount: end - start,
		Stream:    rng.StreamVersion,
		ElapsedMS: 1.5,
		Spec:      json.RawMessage(`{"kind":"single","strategy":"MO"}`),
		Series:    map[string]engine.SeriesSnapshot{SeriesTracking: track.Snapshot()},
		Scalars:   map[string]engine.ScalarSnapshot{"sq": sq.Snapshot()},
	}
}

func TestJSONRoundTripLossless(t *testing.T) {
	orig := buildPart(t, 0, 13, 13)
	var buf bytes.Buffer
	if err := Write(&buf, []*Report{orig}); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 {
		t.Fatalf("%d reports decoded", len(back))
	}
	// Compare through a re-marshal: the envelope must be a fixed point
	// of encode∘decode (bitwise float round trip).
	a, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(back[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("report changed across JSON round trip:\n%s\n%s", a, b)
	}
	sum, err := back[0].Summary()
	if err != nil {
		t.Fatal(err)
	}
	origSum, err := orig.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sum, origSum) {
		t.Fatal("summary differs after round trip")
	}
}

// TestGoldenEnvelope pins the envelope's serialized field layout: a
// reader of partial files (another build, another host) depends on these
// key names staying put.
func TestGoldenEnvelope(t *testing.T) {
	rep := buildPart(t, 2, 4, 8)
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	golden := `{"name":"toy","kind":"single","seed":9,"horizon":2,"total_runs":8,"run_start":2,"run_count":2,` +
		`"stream":"splitmix64-derive/1","elapsed_ms":1.5,"spec":{"kind":"single","strategy":"MO"},` +
		`"series":{"tracking":{"t":2,"next":4,"nodes":[{"start":2,"n":2,"mean":[2.5,5],"m2":[0.5,2]}]}},` +
		`"scalars":{"sq":{"next":4,"nodes":[{"start":2,"n":2,"mean":6.5,"m2":12.5}]}}}`
	if string(blob) != golden {
		t.Fatalf("envelope layout changed:\n got %s\nwant %s", blob, golden)
	}
}

func TestMergeReproducesWholeBitForBit(t *testing.T) {
	const total = 29
	whole := buildPart(t, 0, total, total)
	for _, cuts := range [][]int{{0, 14, total}, {0, 7, 8, 21, total}} {
		var parts []*Report
		for i := 0; i+1 < len(cuts); i++ {
			parts = append(parts, buildPart(t, cuts[i], cuts[i+1], total))
		}
		// Merge in scrambled order: Merge sorts by RunStart itself.
		for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
			parts[i], parts[j] = parts[j], parts[i]
		}
		merged, err := Merge(parts...)
		if err != nil {
			t.Fatal(err)
		}
		if !merged.Complete() {
			t.Fatalf("merged report covers [%d,%d) of %d", merged.RunStart, merged.RunStart+merged.RunCount, merged.TotalRuns)
		}
		merged.ElapsedMS = whole.ElapsedMS // timing legitimately differs
		a, _ := json.Marshal(whole)
		b, _ := json.Marshal(merged)
		if !bytes.Equal(a, b) {
			t.Fatalf("cuts %v: merged report differs from whole:\n%s\n%s", cuts, a, b)
		}
	}
}

func TestMergeValidation(t *testing.T) {
	if _, err := Merge(); err == nil {
		t.Fatal("empty merge accepted")
	}
	a, b := buildPart(t, 0, 5, 10), buildPart(t, 5, 10, 10)

	gap := buildPart(t, 6, 10, 10)
	if _, err := Merge(a, gap); err == nil || !strings.Contains(err.Error(), "gap or overlap") {
		t.Fatalf("gap accepted: %v", err)
	}
	overlap := buildPart(t, 4, 10, 10)
	if _, err := Merge(a, overlap); err == nil {
		t.Fatal("overlap accepted")
	}

	alien := buildPart(t, 5, 10, 10)
	alien.Seed = 77
	if _, err := Merge(a, alien); err == nil || !strings.Contains(err.Error(), "different experiments") {
		t.Fatalf("cross-experiment merge accepted: %v", err)
	}

	drift := buildPart(t, 5, 10, 10)
	drift.Stream = "future-generator/9"
	if _, err := Merge(a, drift); err == nil || !strings.Contains(err.Error(), "different generators") {
		t.Fatalf("cross-stream merge accepted: %v", err)
	}

	respec := buildPart(t, 5, 10, 10)
	respec.Spec = json.RawMessage(`{"kind":"single","strategy":"IM"}`)
	if _, err := Merge(a, respec); err == nil || !strings.Contains(err.Error(), "different specs") {
		t.Fatalf("cross-spec merge accepted: %v", err)
	}

	missing := buildPart(t, 5, 10, 10)
	delete(missing.Scalars, "sq")
	if _, err := Merge(a, missing); err == nil {
		t.Fatal("mismatched scalar keys accepted")
	}

	// A partial merge (not yet complete) is legal.
	part, err := Merge(b)
	if err != nil {
		t.Fatal(err)
	}
	if part.Complete() {
		t.Fatal("partial report claims completeness")
	}
	// The inputs must not be mutated by merging.
	before, _ := json.Marshal(a)
	if _, err := Merge(a, b); err != nil {
		t.Fatal(err)
	}
	after, _ := json.Marshal(a)
	if !bytes.Equal(before, after) {
		t.Fatal("merge mutated its input")
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/parts.json"
	reports := []*Report{buildPart(t, 0, 3, 6), buildPart(t, 3, 6, 6)}
	if err := WriteFile(path, reports); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("%d reports read", len(back))
	}
	merged, err := Merge(back...)
	if err != nil {
		t.Fatal(err)
	}
	if !merged.Complete() || merged.RunCount != 6 {
		t.Fatalf("merged file shards cover %d runs", merged.RunCount)
	}
	if _, err := ReadFile(dir + "/missing.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestExtendRoundsEqualsWhole is the report-level resume guarantee:
// extending a round's report with later rounds — serialized and reloaded
// between rounds, as checkpoint/restore would — reproduces the whole
// run's report bit-for-bit, even when the rounds disagreed on TotalRuns
// (an adaptive driver stamps its cap until it knows the final count).
func TestExtendRoundsEqualsWhole(t *testing.T) {
	const total = 23
	whole := buildPart(t, 0, total, total)
	acc := buildPart(t, 0, 9, 64) // round cap, not the final count
	for _, cut := range [][2]int{{9, 16}, {16, total}} {
		next := buildPart(t, cut[0], cut[1], 64)
		// JSON round trip: rounds cross a process/host boundary.
		blob, err := json.Marshal(acc)
		if err != nil {
			t.Fatal(err)
		}
		var back Report
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatal(err)
		}
		acc = &back
		if err := acc.Extend(next); err != nil {
			t.Fatal(err)
		}
	}
	if acc.RunStart != 0 || acc.RunCount != total {
		t.Fatalf("extended coverage [%d,%d)", acc.RunStart, acc.RunStart+acc.RunCount)
	}
	acc.TotalRuns = total // the adaptive driver's final stamp
	acc.ElapsedMS = whole.ElapsedMS
	a, _ := json.Marshal(whole)
	b, _ := json.Marshal(acc)
	if !bytes.Equal(a, b) {
		t.Fatalf("extended report differs from whole:\n%s\n%s", b, a)
	}
}

func TestExtendValidation(t *testing.T) {
	acc := buildPart(t, 0, 5, 10)
	if err := acc.Extend(); err != nil {
		t.Fatal(err)
	}
	before, _ := json.Marshal(acc)
	if err := acc.Extend(buildPart(t, 7, 10, 10)); err == nil {
		t.Fatal("gap accepted")
	}
	after, _ := json.Marshal(acc)
	if !bytes.Equal(before, after) {
		t.Fatal("failed Extend mutated the receiver")
	}
	next := buildPart(t, 5, 10, 10)
	nextBefore, _ := json.Marshal(next)
	if err := acc.Extend(next); err != nil {
		t.Fatal(err)
	}
	if nextAfter, _ := json.Marshal(next); !bytes.Equal(nextBefore, nextAfter) {
		t.Fatal("Extend mutated its argument")
	}
	if !acc.Complete() {
		t.Fatal("extended report incomplete")
	}
}

func TestTargetSE(t *testing.T) {
	rep := buildPart(t, 0, 9, 9)
	// Series target: the worst per-slot SE. Runs r contribute [r, 2r], so
	// slot 1 has twice slot 0's spread.
	track, err := rep.SeriesStats(SeriesTracking)
	if err != nil {
		t.Fatal(err)
	}
	worst := track.StdErr()[1]
	if got, err := rep.TargetSE(engine.Target{Series: SeriesTracking, SE: 1}); err != nil || got != worst {
		t.Fatalf("series TargetSE = %v, %v; want %v", got, err, worst)
	}
	// Both names empty defaults to the tracking series.
	if got, err := rep.TargetSE(engine.Target{SE: 1}); err != nil || got != worst {
		t.Fatalf("default TargetSE = %v, %v; want %v", got, err, worst)
	}
	sq, err := rep.ScalarStats("sq")
	if err != nil {
		t.Fatal(err)
	}
	if got, err := rep.TargetSE(engine.Target{Scalar: "sq", SE: 1}); err != nil || got != sq.StdErr() {
		t.Fatalf("scalar TargetSE = %v, %v; want %v", got, err, sq.StdErr())
	}
	if _, err := rep.TargetSE(engine.Target{Series: "nope", SE: 1}); err == nil {
		t.Fatal("unknown series accepted")
	}
	if _, err := rep.TargetSE(engine.Target{Scalar: "nope", SE: 1}); err == nil {
		t.Fatal("unknown scalar accepted")
	}
}

// TestMergeEmptyShardAnyOrder reproduces the Runs < shard-count case: an
// empty shard [s,s) shares its RunStart with the nonempty shard starting
// at s, and Merge must accept the parts in ANY order (the documented
// contract), not only when the empty one happens to come first.
func TestMergeEmptyShardAnyOrder(t *testing.T) {
	// Shard ranges of Runs=2 over Count=3: [0,0), [0,1), [1,2).
	parts := []*Report{
		buildPart(t, 0, 0, 2),
		buildPart(t, 0, 1, 2),
		buildPart(t, 1, 2, 2),
	}
	whole := buildPart(t, 0, 2, 2)
	for _, order := range [][]int{{0, 1, 2}, {1, 0, 2}, {2, 1, 0}, {1, 2, 0}} {
		shuffled := make([]*Report, len(parts))
		for i, j := range order {
			shuffled[i] = parts[j]
		}
		merged, err := Merge(shuffled...)
		if err != nil {
			t.Fatalf("order %v: %v", order, err)
		}
		if !merged.Complete() {
			t.Fatalf("order %v: merged incomplete", order)
		}
		merged.ElapsedMS = whole.ElapsedMS
		a, _ := json.Marshal(whole)
		b, _ := json.Marshal(merged)
		if !bytes.Equal(a, b) {
			t.Fatalf("order %v: merged differs from whole:\n%s\n%s", order, b, a)
		}
	}
}
