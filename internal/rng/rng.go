// Package rng is the repository's randomness substrate: every
// pseudo-random stream in chaffmec — Monte-Carlo runs, mobility-model
// construction, trace generation, figure drivers and tests — is derived
// through this package, so that "which stream does run r of experiment s
// draw?" has exactly one answer.
//
// # The generator
//
// Source is a splitmix64 generator (Steele, Lea & Flood, "Fast Splittable
// Pseudorandom Number Generators", OOPSLA 2014): 8 bytes of state, a
// golden-ratio Weyl increment and a three-round xor-multiply finishing
// avalanche per output. It implements math/rand.Source64, so
// rand.New(src) layers the full math/rand distribution toolkit
// (Float64, Perm, Shuffle, NormFloat64, …) on top of it. Unlike the
// default math/rand source — a ~5 KB lagged-Fibonacci table that is
// re-allocated and re-seeded at O(kB) cost per stream — a Source is
// allocation-free to reseed: Reseed replaces the 8-byte state and the
// next draw starts the new stream. The Monte-Carlo engine exploits this
// by keeping ONE Source per worker and reseeding it per run, which
// removes the dominant per-run allocation of the previous design.
//
// # Stream derivation
//
// Derive is the one seed-derivation API. It folds a base seed with a
// tuple of stream indices (run number, worker rank, strategy slot, model
// id, …) through the splitmix64 avalanche, so that
//
//   - distinct index tuples yield decorrelated child seeds even when the
//     base seed and the indices are tiny integers (0, 1, 2, …), and
//   - a derived stream depends only on (seed, indices) — never on
//     scheduling, worker count or call order.
//
// All ad-hoc arithmetic of the form seed+7, seed*1000+id or
// seed+rank*307+si predating this package has been replaced by Derive
// calls; new code must not invent its own seed arithmetic.
//
// Single-index derivations Derive(seed, r) are RESERVED for the
// Monte-Carlo engine's run streams (run r of the experiment seeded s).
// Auxiliary named streams — model construction, estimators, anything
// drawn outside the engine's per-run streams — must derive with at
// least two indices, leading with a package-level stream tag (e.g.
// mobility.StreamModel), so they can never collide with a run stream
// of the same experiment seed. Tags in use: 1 (mobility.StreamModel),
// 2 (internal/figures auxiliary streams); pick a fresh tag when adding
// a package's first named stream.
//
// # Stream-stability contract
//
// For a fixed package version, the byte stream of New(seed),
// NewStream(seed, ids…) and NewRun(seed, run) is a pure function of its
// arguments. Regression tests across the repository pin values sampled
// from these streams. The streams are NOT guaranteed stable across
// changes to this package: replacing the generator or the derivation is
// allowed, but it is a breaking change that must re-pin every stream
// regression test in the same commit (this happened once, when the
// repository moved from math/rand's lagged-Fibonacci source to
// splitmix64 — see the regress_test files in internal/sim and
// internal/multiuser).
package rng

import "math/rand"

// StreamVersion names the generator + derivation this package currently
// implements. It is recorded in serialized experiment partials
// (internal/report) so that shards produced by different builds are only
// merged when they drew from the same streams; bump it in the same
// commit as any breaking stream change (see the stream-stability
// contract above).
const StreamVersion = "splitmix64-derive/1"

// golden is 2^64/φ, the splitmix64 Weyl-sequence increment.
const golden = 0x9e3779b97f4a7c15

// mix is the splitmix64 finishing avalanche: every input bit affects
// every output bit with probability ~1/2.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Derive folds a base seed and a tuple of stream indices into a child
// seed. With no indices it avalanches the seed itself (so low-entropy
// seeds 0, 1, 2 … still start well-separated streams); each index is
// folded with a golden-ratio multiply followed by the full avalanche.
// Derive(seed, run) reproduces the engine's historical MixSeed(seed, run)
// derivation exactly.
func Derive(seed int64, ids ...int64) int64 {
	x := uint64(seed)
	if len(ids) == 0 {
		return int64(mix(x))
	}
	for _, id := range ids {
		x = mix(x ^ (uint64(id)+1)*golden)
	}
	return int64(x)
}

// Source is a reseedable splitmix64 generator implementing
// math/rand.Source64. The zero value is a valid source seeded with 0;
// construct positioned sources with NewSource or (re)position an
// existing one with Seed/Reseed. A Source is not safe for concurrent
// use; give each goroutine its own.
type Source struct {
	state uint64
}

var _ rand.Source64 = (*Source)(nil)

// NewSource returns a Source positioned at the start of seed's stream.
func NewSource(seed int64) *Source {
	s := &Source{}
	s.Seed(seed)
	return s
}

// Seed repositions the source at the start of seed's stream
// (math/rand.Source interface). The seed is avalanched first, so
// adjacent seeds start decorrelated streams.
func (s *Source) Seed(seed int64) {
	s.state = mix(uint64(seed))
}

// Reseed repositions the source at the start of the (seed, run) stream —
// the same stream NewRun(seed, run) draws — without allocating. This is
// the per-run entry point of the Monte-Carlo engine's worker loop.
//
// When the source is wrapped in a long-lived *rand.Rand, note that
// rand.Rand.Read keeps its own small byte buffer that Reseed cannot
// reset; reseeded streams are only identical to fresh NewRun streams
// for the buffer-free rand.Rand methods (Float64, Intn, Perm, …).
func (s *Source) Reseed(seed int64, run int) {
	s.state = uint64(Derive(seed, int64(run)))
}

// ReseedStream repositions the source at the start of the Derive(seed,
// ids…) stream without allocating.
func (s *Source) ReseedStream(seed int64, ids ...int64) {
	s.state = uint64(Derive(seed, ids...))
}

// Uint64 returns the next 64 random bits.
func (s *Source) Uint64() uint64 {
	s.state += golden
	return mix(s.state)
}

// Int63 returns a non-negative 63-bit value (math/rand.Source
// interface).
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// New returns a *rand.Rand over a fresh Source positioned at seed's
// stream — the canonical replacement for
// rand.New(rand.NewSource(seed)) everywhere in this repository.
func New(seed int64) *rand.Rand {
	return rand.New(NewSource(seed))
}

// NewStream returns a *rand.Rand over the Derive(seed, ids…) stream:
// the named-substream constructor for call sites that need several
// decorrelated streams from one experiment seed.
func NewStream(seed int64, ids ...int64) *rand.Rand {
	s := &Source{state: uint64(Derive(seed, ids...))}
	return rand.New(s)
}

// NewRun returns a *rand.Rand over the private stream of one
// Monte-Carlo run, identical to a worker Source after
// Reseed(seed, run). Tests use it to replay a single run by hand.
func NewRun(seed int64, run int) *rand.Rand {
	return NewStream(seed, int64(run))
}
