package rng

import (
	"math"
	"math/bits"
	"math/rand"
	"testing"
)

// TestDeriveMatchesHistoricalMixSeed pins Derive(seed, run) to the
// engine's historical MixSeed algorithm: a golden-ratio multiply of
// (run+1) xor'd into the seed, then the splitmix64 finishing avalanche.
// engine.MixSeed delegates here; this test keeps the delegation honest.
func TestDeriveMatchesHistoricalMixSeed(t *testing.T) {
	mixSeed := func(seed int64, run int) int64 {
		x := uint64(seed) ^ (uint64(run)+1)*0x9e3779b97f4a7c15
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		return int64(x)
	}
	for _, seed := range []int64{0, 1, 12345, -7} {
		for run := 0; run < 100; run++ {
			if got, want := Derive(seed, int64(run)), mixSeed(seed, run); got != want {
				t.Fatalf("Derive(%d, %d) = %d, want historical MixSeed %d", seed, run, got, want)
			}
		}
	}
}

func TestDeriveDistinctAcrossTuples(t *testing.T) {
	seen := make(map[int64][]int64)
	add := func(v int64, tuple ...int64) {
		if prev, ok := seen[v]; ok {
			t.Fatalf("derived-seed collision: %v and %v both map to %d", prev, tuple, v)
		}
		seen[v] = tuple
	}
	for seed := int64(0); seed < 4; seed++ {
		add(Derive(seed), seed)
		for a := int64(0); a < 16; a++ {
			add(Derive(seed, a), seed, a)
			for b := int64(0); b < 16; b++ {
				add(Derive(seed, a, b), seed, a, b)
			}
		}
	}
}

// TestDeriveAvalanche: adjacent run indices must flip about half of the
// 64 output bits — the property the old ad-hoc seed arithmetic
// (seed+7, seed+rank*307+si, …) lacked.
func TestDeriveAvalanche(t *testing.T) {
	total := 0
	const pairs = 2000
	for run := 0; run < pairs; run++ {
		a := uint64(Derive(7, int64(run)))
		b := uint64(Derive(7, int64(run)+1))
		total += bits.OnesCount64(a ^ b)
	}
	avg := float64(total) / pairs
	if avg < 28 || avg > 36 {
		t.Fatalf("adjacent streams differ in %.1f bits on average, want ≈ 32", avg)
	}
}

func TestReseedMatchesNewRun(t *testing.T) {
	src := NewSource(0)
	r := rand.New(src)
	for run := 0; run < 20; run++ {
		src.Reseed(99, run)
		fresh := NewRun(99, run)
		for i := 0; i < 50; i++ {
			if got, want := r.Float64(), fresh.Float64(); got != want {
				t.Fatalf("run %d draw %d: reseeded worker stream %v != NewRun stream %v", run, i, got, want)
			}
		}
	}
}

func TestReseedStreamMatchesNewStream(t *testing.T) {
	src := NewSource(0)
	r := rand.New(src)
	src.ReseedStream(5, 3, 1)
	fresh := NewStream(5, 3, 1)
	for i := 0; i < 50; i++ {
		if got, want := r.Uint64(), fresh.Uint64(); got != want {
			t.Fatalf("draw %d: %v != %v", i, got, want)
		}
	}
}

func TestNewIsDeterministicAndSeedSensitive(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c, d := New(0), New(1)
	same := 0
	for i := 0; i < 100; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds collided on %d of 100 draws", same)
	}
}

// TestSourceUniformity is a coarse distribution check: Float64 over the
// wrapped source must fill [0,1) evenly enough for Monte-Carlo use.
func TestSourceUniformity(t *testing.T) {
	r := New(1)
	const n, buckets = 200000, 16
	var counts [buckets]int
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v outside [0,1)", v)
		}
		counts[int(v*buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d has %d draws, want ≈ %.0f", b, c, want)
		}
	}
}

func TestZeroValueSourceUsable(t *testing.T) {
	var s Source
	r := rand.New(&s)
	if v := r.Float64(); v < 0 || v >= 1 {
		t.Fatalf("zero-value source drew %v", v)
	}
}

func TestInt63NonNegative(t *testing.T) {
	s := NewSource(-12345)
	for i := 0; i < 1000; i++ {
		if v := s.Int63(); v < 0 {
			t.Fatalf("Int63 = %d < 0", v)
		}
	}
}
