package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"chaffmec/internal/engine"
	"chaffmec/internal/report"
)

// Round describes one completed round of adaptive (or resumed)
// execution — the progress unit long jobs report.
type Round struct {
	// Start and End delimit the run range the round executed.
	Start, End int
	// Covered is the total covered run count after the round.
	Covered int
	// SE is the tracked standard error after the round (NaN when the
	// job has no precision target), Target the goal (0 when disabled).
	SE, Target float64
	// Done reports whether this was the final round.
	Done bool
}

// Progress observes completed rounds. It runs on the driving goroutine
// between rounds; a slow callback delays the next round, nothing else.
type Progress func(Round)

// RunAdaptive executes one whole job in rounds. With a precision target
// (Spec.Precision) the schedule is SE-driven: rounds extend the covered
// run range [0,n₁) → [n₁,n₂) → … until the tracked standard error
// reaches the target (stopping somewhere in [MinRuns, MaxRuns]) or
// MaxRuns is exhausted, and the final report's TotalRuns is the
// adaptively chosen count. Without one it degenerates to a single round
// covering the spec's fixed Runs.
//
// On error — including ctx cancellation mid-round — the partial report
// accumulated from the COMPLETED rounds is returned alongside the
// error: a well-formed checkpoint whose coverage reflects only finished
// rounds, resumable with ResumeJob. Because both the round schedule and
// the per-run streams are pure functions of the (serialized) report
// state, a resumed job reproduces the uninterrupted one bit-for-bit.
func RunAdaptive(ctx context.Context, job Job, progress Progress) (*report.Report, error) {
	return extendJob(ctx, job, nil, progress)
}

// ResumeJob continues a checkpointed job from a previously emitted
// (partial) report: it validates that the report belongs to this job
// (name, kind, seed, stream, spec — the precision block may differ; the
// runs already executed do not depend on it), then extends coverage with
// the rounds the uninterrupted job would have executed next. Like
// RunAdaptive it returns the accumulated partial alongside any error.
// from is not modified; a nil from runs the job from scratch.
func ResumeJob(ctx context.Context, job Job, from *report.Report, progress Progress) (*report.Report, error) {
	if from == nil {
		return RunAdaptive(ctx, job, progress)
	}
	cl, err := PrepareResume(job, from)
	if err != nil {
		return nil, err
	}
	return extendJob(ctx, job, cl, progress)
}

// PrepareResume validates that a checkpoint belongs to a job and
// returns a clone of it ready to extend: the front half of ResumeJob,
// shared with external executors (the distributed coordinator resumes
// a fleet campaign through it). The checkpoint must cover a prefix from
// run 0 of the same experiment — name, kind, seed and every spec field
// except the precision block, which only decides how many runs execute
// and may legally change between checkpoint and resume. A fixed-count
// job additionally must not already cover more runs than the spec
// declares. from is not modified; a nil from returns nil (resume from
// scratch).
func PrepareResume(job Job, from *report.Report) (*report.Report, error) {
	if from == nil {
		return nil, nil
	}
	sp := job.Spec.withDefaults()
	if from.RunStart != 0 {
		return nil, fmt.Errorf("scenario: resuming %q: checkpoint covers [%d,%d), want coverage from run 0",
			from.Name, from.RunStart, from.RunStart+from.RunCount)
	}
	if from.Name != sp.Name || from.Kind != sp.Kind || from.Seed != sp.Seed {
		return nil, fmt.Errorf("scenario: resuming %q/%s (seed %d) with checkpoint %q/%s (seed %d): different experiments",
			sp.Name, sp.Kind, sp.Seed, from.Name, from.Kind, from.Seed)
	}
	if err := sameSpecModuloPrecision(sp, from.Spec); err != nil {
		return nil, err
	}
	plan, err := NewPlan(job.Spec)
	if err != nil {
		return nil, err
	}
	if !plan.Adaptive() && from.RunCount > plan.FixedRuns() {
		return nil, fmt.Errorf("scenario: resuming %q: checkpoint covers %d runs, spec declares %d", sp.Name, from.RunCount, plan.FixedRuns())
	}
	// Re-stamp the mutable header fields the driver owns: the spec echo
	// (the checkpoint may have been taken under a different precision
	// block) and TotalRuns (the round loop re-stamps it per round
	// anyway). Work on a clone — the caller's checkpoint stays intact.
	cl := *from
	if spec, err := json.Marshal(sp); err == nil {
		cl.Spec = spec
	}
	return &cl, nil
}

// sameSpecModuloPrecision verifies a checkpoint's spec echo matches the
// resuming spec on every field that influences the runs themselves. The
// precision block only decides HOW MANY runs execute — never what any
// run computes — so resuming under a tightened or loosened target is
// legal and explicitly supported.
func sameSpecModuloPrecision(sp Spec, echo json.RawMessage) error {
	if len(echo) == 0 {
		return nil // pre-envelope checkpoints carry no echo to check
	}
	strip := func(raw []byte) ([]byte, error) {
		var m map[string]json.RawMessage
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, err
		}
		delete(m, "precision")
		return json.Marshal(m)
	}
	mine, err := json.Marshal(sp)
	if err != nil {
		return err
	}
	a, err := strip(mine)
	if err != nil {
		return err
	}
	b, err := strip(echo)
	if err != nil {
		return fmt.Errorf("scenario: resuming %q: parsing checkpoint spec echo: %w", sp.Name, err)
	}
	if !bytes.Equal(a, b) {
		return fmt.Errorf("scenario: resuming %q: checkpoint was produced by a different spec (only the precision block may change)", sp.Name)
	}
	return nil
}

// extendJob is the round loop shared by adaptive execution and resume:
// starting from an optional accumulated partial (owned by the caller of
// ResumeJob, already validated and re-stamped), execute the rounds the
// job's Plan schedules — extending the report after each — until the
// precision target stops the job or the spec's fixed Runs are covered.
func extendJob(ctx context.Context, job Job, acc *report.Report, progress Progress) (*report.Report, error) {
	sp := job.Spec.withDefaults()
	if !job.Shard.IsWhole() {
		return nil, fmt.Errorf("scenario: adaptive/resumed execution covers the whole run range, got shard %s", job.Shard)
	}
	plan, err := NewPlan(job.Spec)
	if err != nil {
		return nil, err
	}
	if acc != nil && !plan.Adaptive() && acc.RunCount > plan.FixedRuns() {
		return nil, fmt.Errorf("scenario: resuming %q: checkpoint covers %d runs, spec declares %d", sp.Name, acc.RunCount, plan.FixedRuns())
	}
	for {
		rp, err := plan.Next(acc)
		if err != nil {
			return acc, fmt.Errorf("scenario: %q: %w", sp.Name, err)
		}
		if rp.Done {
			break
		}
		rep, err := runJobShard(ctx, Job{Spec: job.Spec, Shard: engine.Span(rp.Start, rp.End)})
		if err != nil {
			return acc, err // acc: the well-formed partial of completed rounds
		}
		// Rounds cannot know an adaptive job's final count; stamp the cap
		// so successive partials agree until the loop stops.
		plan.Stamp(rep)
		if acc == nil {
			acc = rep
		} else if err := acc.Extend(rep); err != nil {
			return acc, fmt.Errorf("scenario: extending %q after round [%d,%d): %w", sp.Name, rp.Start, rp.End, err)
		}
		if progress != nil {
			peek, err := plan.Next(acc)
			if err != nil {
				return acc, fmt.Errorf("scenario: %q: %w", sp.Name, err)
			}
			progress(Round{Start: rp.Start, End: rp.End, Covered: acc.RunCount, SE: peek.SE, Target: plan.Target().SE, Done: peek.Done})
		}
	}
	// The experiment's run count is now known; the report covers the
	// whole adaptively chosen (or declared fixed) range.
	plan.Finalize(acc)
	return acc, nil
}

// JobFromReport reconstructs the Job a report was produced by, from its
// spec echo — enough to resume a checkpoint on a host that only received
// the report file.
func JobFromReport(rep *report.Report) (Job, error) {
	if len(rep.Spec) == 0 {
		return Job{}, fmt.Errorf("scenario: report %q carries no spec echo", rep.Name)
	}
	var sp Spec
	dec := json.NewDecoder(bytes.NewReader(rep.Spec))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		return Job{}, fmt.Errorf("scenario: parsing %q spec echo: %w", rep.Name, err)
	}
	return Job{Spec: sp}, nil
}
