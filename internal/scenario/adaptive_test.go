package scenario

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"testing"

	"chaffmec/internal/engine"
	"chaffmec/internal/report"
)

// adaptiveSpec is the shared adaptive test scenario: small enough to
// iterate fast, noisy enough that its tracking SE decays smoothly.
func adaptiveSpec(p *Precision) Spec {
	return Spec{
		Name: "adapt", Kind: "single", Strategy: "MO", NumChaffs: 1,
		Horizon: 10, Runs: 64, Seed: 11, Precision: p,
	}
}

// roundTrip pushes a report through its JSON serialization — the
// checkpoint file a resumed process would read back.
func roundTrip(t *testing.T, rep *report.Report) *report.Report {
	t.Helper()
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back report.Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	return &back
}

// TestAdaptiveStopBounds is the acceptance criterion on stopping: an
// attainable SE target stops with MinRuns <= n < MaxRuns, an
// unattainable one exactly at MaxRuns, and the final report is complete
// with TotalRuns equal to the adaptively chosen count.
func TestAdaptiveStopBounds(t *testing.T) {
	// Calibrate an attainable goal: the SE a mid-size fixed run reaches.
	probe, err := RunJob(context.Background(), Job{Spec: adaptiveSpec(nil)})
	if err != nil {
		t.Fatal(err)
	}
	se64, err := probe.TargetSE(engine.Target{SE: 1})
	if err != nil {
		t.Fatal(err)
	}
	if se64 <= 0 {
		t.Fatalf("probe SE %v — scenario too deterministic for this test", se64)
	}

	attainable := &Precision{TargetSE: se64 * 1.05, MinRuns: 8, MaxRuns: 4096}
	rep, err := RunAdaptive(context.Background(), Job{Spec: adaptiveSpec(attainable)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := rep.RunCount
	if n < attainable.MinRuns || n >= attainable.MaxRuns {
		t.Fatalf("attainable target stopped at %d runs, want [%d,%d)", n, attainable.MinRuns, attainable.MaxRuns)
	}
	if rep.TotalRuns != n || !rep.Complete() {
		t.Fatalf("final report covers [%d,%d) of %d — not finalized", rep.RunStart, rep.RunStart+rep.RunCount, rep.TotalRuns)
	}
	if se, err := rep.TargetSE(engine.Target{SE: 1}); err != nil || se > attainable.TargetSE {
		t.Fatalf("stopped at SE %v (err %v), target %v", se, err, attainable.TargetSE)
	}

	unattainable := &Precision{TargetSE: 1e-9, MinRuns: 8, MaxRuns: 96}
	rep, err = RunAdaptive(context.Background(), Job{Spec: adaptiveSpec(unattainable)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RunCount != unattainable.MaxRuns || rep.TotalRuns != unattainable.MaxRuns {
		t.Fatalf("unattainable target stopped at %d runs, want exactly MaxRuns %d", rep.RunCount, unattainable.MaxRuns)
	}
}

// TestRunJobDispatchesAdaptive: a precision-carrying spec runs
// adaptively through the plain RunJob entry point (the one code path
// every kind shares), while a sharded job of the same spec executes its
// fixed slice.
func TestRunJobDispatchesAdaptive(t *testing.T) {
	p := &Precision{TargetSE: 1e-9, MinRuns: 4, MaxRuns: 12}
	rep, err := RunJob(context.Background(), Job{Spec: adaptiveSpec(p)})
	if err != nil {
		t.Fatal(err)
	}
	// Adaptive finalization: TotalRuns is the adaptively chosen count
	// inside [MinRuns, MaxRuns], not the spec's fixed Runs (64).
	if !rep.Complete() || rep.TotalRuns != rep.RunCount ||
		rep.TotalRuns < p.MinRuns || rep.TotalRuns > p.MaxRuns {
		t.Fatalf("RunJob did not adapt: %d of %d", rep.RunCount, rep.TotalRuns)
	}
	shard, err := RunJob(context.Background(), Job{Spec: adaptiveSpec(p), Shard: engine.Shard{Index: 0, Count: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if shard.RunStart != 0 || shard.RunCount != 32 { // half of the fixed Runs 64
		t.Fatalf("sharded precision job covers [%d,%d)", shard.RunStart, shard.RunStart+shard.RunCount)
	}
}

// TestRoundResumeEqualsWholeBitwise is the scenario-layer resume
// guarantee: a fixed job executed as explicit-range rounds through a
// serialized checkpoint equals the one-shot run bit-for-bit.
func TestRoundResumeEqualsWholeBitwise(t *testing.T) {
	sp := adaptiveSpec(nil)
	whole, err := RunJob(context.Background(), Job{Spec: sp})
	if err != nil {
		t.Fatal(err)
	}
	// Round 1 in "another process": an explicit-range shard job.
	part, err := RunJob(context.Background(), Job{Spec: sp, Shard: engine.Span(0, 13)})
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeJob(context.Background(), Job{Spec: sp}, roundTrip(t, part), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := marshalStable(t, resumed), marshalStable(t, whole); !json.Valid(got) || string(got) != string(want) {
		t.Fatalf("resumed fixed job differs from one-shot run:\n%s\n%s", got, want)
	}
}

// TestAdaptiveCancelYieldsPartialAndResumesBitwise covers the
// cancellation contract: a context cancelled mid-round yields a
// well-formed partial whose coverage reflects only completed rounds, and
// resuming that partial (through JSON) reproduces the uninterrupted
// adaptive run bit-for-bit.
func TestAdaptiveCancelYieldsPartialAndResumesBitwise(t *testing.T) {
	p := &Precision{TargetSE: 1e-9, MinRuns: 8, MaxRuns: 48} // 3+ rounds: 8, 16, 32, 48
	job := Job{Spec: adaptiveSpec(p)}

	uninterrupted, err := RunAdaptive(context.Background(), job, nil)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var rounds []Round
	partial, err := RunAdaptive(ctx, job, func(r Round) {
		rounds = append(rounds, r)
		if len(rounds) == 2 {
			cancel() // the third round dies mid-flight
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if partial == nil {
		t.Fatal("cancelled adaptive job returned no partial")
	}
	if partial.RunStart != 0 || partial.RunCount != rounds[1].Covered {
		t.Fatalf("partial covers [%d,%d), want the %d runs of the completed rounds",
			partial.RunStart, partial.RunStart+partial.RunCount, rounds[1].Covered)
	}
	if partial.Complete() {
		t.Fatal("partial claims completeness")
	}
	if _, err := partial.Summary(); err != nil {
		t.Fatalf("partial not well-formed: %v", err)
	}

	resumed, err := ResumeJob(context.Background(), job, roundTrip(t, partial), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := marshalStable(t, resumed), marshalStable(t, uninterrupted); string(got) != string(want) {
		t.Fatalf("resumed adaptive job differs from uninterrupted run:\n%s\n%s", got, want)
	}
}

// TestAdaptiveProgressRounds checks the progress stream: contiguous
// ranges, growing coverage, final round flagged Done.
func TestAdaptiveProgressRounds(t *testing.T) {
	p := &Precision{TargetSE: 1e-9, MinRuns: 8, MaxRuns: 40}
	var rounds []Round
	if _, err := RunAdaptive(context.Background(), Job{Spec: adaptiveSpec(p)}, func(r Round) {
		rounds = append(rounds, r)
	}); err != nil {
		t.Fatal(err)
	}
	if len(rounds) < 2 {
		t.Fatalf("only %d rounds", len(rounds))
	}
	next := 0
	for i, r := range rounds {
		if r.Start != next || r.End <= r.Start || r.Covered != r.End {
			t.Fatalf("round %d: %+v (want contiguous from %d)", i, r, next)
		}
		if math.IsNaN(r.SE) || r.Target != p.TargetSE {
			t.Fatalf("round %d: SE %v target %v", i, r.SE, r.Target)
		}
		if r.Done != (i == len(rounds)-1) {
			t.Fatalf("round %d: Done = %v", i, r.Done)
		}
		next = r.End
	}
	if rounds[0].End != p.MinRuns || next != p.MaxRuns {
		t.Fatalf("schedule opened at %d (want %d), closed at %d (want %d)",
			rounds[0].End, p.MinRuns, next, p.MaxRuns)
	}
}

func TestResumeValidation(t *testing.T) {
	sp := adaptiveSpec(nil)
	part, err := RunJob(context.Background(), Job{Spec: sp, Shard: engine.Span(0, 8)})
	if err != nil {
		t.Fatal(err)
	}
	// Wrong experiment: different seed.
	other := sp
	other.Seed = 999
	if _, err := ResumeJob(context.Background(), Job{Spec: other}, part, nil); err == nil {
		t.Fatal("cross-seed resume accepted")
	}
	// Different spec body (strategy) behind the same header.
	restrat := sp
	restrat.Strategy = "IM"
	restrat.Name = "adapt"
	if _, err := ResumeJob(context.Background(), Job{Spec: restrat}, part, nil); err == nil {
		t.Fatal("cross-spec resume accepted")
	}
	// A checkpoint not starting at run 0 cannot seed a whole-run resume.
	mid, err := RunJob(context.Background(), Job{Spec: sp, Shard: engine.Span(8, 16)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ResumeJob(context.Background(), Job{Spec: sp}, mid, nil); err == nil {
		t.Fatal("mid-range checkpoint accepted")
	}
	// A changed precision block is explicitly allowed.
	reprec := sp
	reprec.Precision = &Precision{TargetSE: 1e-9, MinRuns: 4, MaxRuns: 24}
	rep, err := ResumeJob(context.Background(), Job{Spec: reprec}, part, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RunCount != 24 {
		t.Fatalf("retargeted resume covers %d runs, want 24", rep.RunCount)
	}
	// The caller's checkpoint must stay intact.
	if part.RunCount != 8 || part.TotalRuns != 64 {
		t.Fatalf("ResumeJob mutated its checkpoint: %+v", part)
	}
}

func TestJobFromReport(t *testing.T) {
	sp := adaptiveSpec(nil)
	rep, err := RunJob(context.Background(), Job{Spec: sp})
	if err != nil {
		t.Fatal(err)
	}
	job, err := JobFromReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	if job.Spec.Kind != "single" || job.Spec.Strategy != "MO" || job.Spec.Seed != 11 || job.Spec.Runs != 64 {
		t.Fatalf("reconstructed spec: %+v", job.Spec)
	}
	if _, err := JobFromReport(&report.Report{Name: "bare"}); err == nil {
		t.Fatal("echo-less report accepted")
	}
}

// TestTraceLabSharedAcrossRounds: the rounds (and repeated jobs) of a
// "trace" scenario reuse one cached TraceLab instead of rebuilding the
// trace pipeline per round.
func TestTraceLabSharedAcrossRounds(t *testing.T) {
	if testing.Short() {
		t.Skip("trace lab build")
	}
	sp := Spec{
		Name: "trace-cache", Kind: "trace", Nodes: 40, Horizon: 24,
		Strategy: "IM", NumChaffs: 1, Seed: 5, Runs: 8,
		Precision: &Precision{TargetSE: 1e-9, MinRuns: 4, MaxRuns: 12},
	}
	traceLabCache.Lock()
	before := traceLabCache.builds
	traceLabCache.Unlock()
	// Adaptive: several rounds; then the same job again whole.
	if _, err := RunJob(context.Background(), Job{Spec: sp}); err != nil {
		t.Fatal(err)
	}
	sp.Precision = nil
	if _, err := RunJob(context.Background(), Job{Spec: sp}); err != nil {
		t.Fatal(err)
	}
	traceLabCache.Lock()
	builds := traceLabCache.builds - before
	traceLabCache.Unlock()
	if builds != 1 {
		t.Fatalf("trace lab built %d times across rounds, want 1", builds)
	}
	// A different lab parameterisation builds (and caches) its own.
	sp.Nodes = 42
	sp.Name = "trace-cache-2"
	if _, err := RunJob(context.Background(), Job{Spec: sp}); err != nil {
		t.Fatal(err)
	}
	traceLabCache.Lock()
	builds = traceLabCache.builds - before
	traceLabCache.Unlock()
	if builds != 2 {
		t.Fatalf("distinct lab config reused a mismatched cache entry (%d builds)", builds)
	}
}
