package scenario

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"chaffmec/internal/engine"
	"chaffmec/internal/report"
)

// Job is the one experiment envelope: a scenario spec plus the shard of
// its global Monte-Carlo run range to execute. The zero Shard runs the
// whole experiment. Complementary shards of the same Job — run by this
// process, another process, or another host — merge with report.Merge
// into the identical Report a whole run produces.
type Job struct {
	Spec  Spec         `json:"spec"`
	Shard engine.Shard `json:"shard"`
}

// RunJob executes one job and returns its serializable Report. A job
// whose spec carries a Precision block and whose shard selects the whole
// run range executes adaptively (round-based, precision-targeted — see
// RunAdaptive); every other job dispatches its selected range through
// the registered kind directly, so shard workers of an adaptive
// experiment still execute exactly the range they are handed. The Report
// is stamped with provenance (the defaulted spec echo, seed, stream
// version, covered run range) and wall-clock timing. ctx cancels the
// underlying engine between runs; like RunAdaptive, a cancelled adaptive
// job returns its partial report alongside the error.
func RunJob(ctx context.Context, job Job) (*report.Report, error) {
	if job.Spec.Precision != nil && job.Spec.Precision.TargetSE > 0 && job.Shard.IsWhole() {
		return RunAdaptive(ctx, job, nil)
	}
	return runJobShard(ctx, job)
}

// runJobShard executes exactly the run range job.Shard selects through
// the registered kind — one round of an adaptive job, one shard of a
// distributed one, or the whole range of a fixed one.
func runJobShard(ctx context.Context, job Job) (*report.Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if job.Spec.Kind == "" {
		return nil, errors.New("scenario: spec needs a kind")
	}
	r, ok := registry[job.Spec.Kind]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown kind %q (known: %s)", job.Spec.Kind, strings.Join(Kinds(), ", "))
	}
	if err := job.Shard.Validate(); err != nil {
		return nil, err
	}
	sp := job.Spec.withDefaults()
	//lint:ignore determinism ElapsedMS is a provenance field: wall time spent, never merged into aggregates (Merge sums it) and zeroed out by the byte-compare CI gates
	begin := time.Now()
	rep, err := r(ctx, sp, job.Shard)
	if err != nil {
		// Name the failing scenario without re-stating the package: the
		// runners' errors already carry a "scenario:"/"sim:"/... prefix.
		return nil, fmt.Errorf("%q: %w", sp.Name, err)
	}
	//lint:ignore determinism provenance timing for the same ElapsedMS field
	rep.ElapsedMS = float64(time.Since(begin)) / float64(time.Millisecond)
	if spec, err := json.Marshal(sp); err == nil {
		rep.Spec = spec
	}
	return rep, nil
}

// Run executes one spec whole and digests the report — the convenience
// entry point for callers that do not shard.
func Run(sp Spec) (*Result, error) {
	rep, err := RunJob(context.Background(), Job{Spec: sp})
	if err != nil {
		return nil, err
	}
	return ResultOf(rep)
}

// RunFile loads a JSON config and runs every scenario in order.
func RunFile(path string) ([]*Result, error) {
	specs, err := LoadFile(path)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, 0, len(specs))
	for i, sp := range specs {
		res, err := Run(sp)
		if err != nil {
			return nil, fmt.Errorf("entry %d: %w", i, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// RunJobFile loads a JSON config and runs every scenario as the given
// shard, returning the raw report envelopes — the cross-process entry
// point behind cmd/experiments -scenario -shard.
func RunJobFile(ctx context.Context, path string, shard engine.Shard) ([]*report.Report, error) {
	specs, err := LoadFile(path)
	if err != nil {
		return nil, err
	}
	out := make([]*report.Report, 0, len(specs))
	for i, sp := range specs {
		rep, err := RunJob(ctx, Job{Spec: sp, Shard: shard})
		if err != nil {
			return nil, fmt.Errorf("entry %d: %w", i, err)
		}
		out = append(out, rep)
	}
	return out, nil
}
