package scenario

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"reflect"
	"testing"
	"time"

	"chaffmec/internal/engine"
	"chaffmec/internal/report"
)

// marshalStable marshals a report with its timing zeroed, so bit-for-bit
// comparisons ignore the only legitimately varying field.
func marshalStable(t *testing.T, rep *report.Report) []byte {
	t.Helper()
	cl := *rep
	cl.ElapsedMS = 0
	blob, err := json.Marshal(&cl)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// runShards executes the spec as `count` complementary shard jobs and
// merges the emitted reports (after a JSON round trip, exactly as the
// cross-process workflow would).
func runShards(t *testing.T, sp Spec, count int) *report.Report {
	t.Helper()
	var parts []*report.Report
	for i := 0; i < count; i++ {
		rep, err := RunJob(context.Background(), Job{Spec: sp, Shard: engine.Shard{Index: i, Count: count}})
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		var back report.Report
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatal(err)
		}
		parts = append(parts, &back)
	}
	merged, err := report.Merge(parts...)
	if err != nil {
		t.Fatal(err)
	}
	if !merged.Complete() {
		t.Fatalf("merged report covers [%d,%d) of %d", merged.RunStart, merged.RunStart+merged.RunCount, merged.TotalRuns)
	}
	return merged
}

// TestShardMergeEqualsWhole is the acceptance check of the Job/Report
// redesign: for every kind with a pinned or representative scenario,
// running 2 (and 3) shards and merging the serialized partials
// reproduces the single-process Report bit-for-bit.
func TestShardMergeEqualsWhole(t *testing.T) {
	specs := []Spec{
		// The internal/sim pinned regression scenario (see sim/regress_test).
		{Name: "pin-single", Kind: "single", Model: "spatially-skewed", ModelSeed: 99,
			Strategy: "MO", NumChaffs: 2, Horizon: 8, Runs: 32, Seed: 12345, Workers: 3},
		// The internal/multiuser pinned regression scenario.
		{Name: "pin-multiuser", Kind: "multiuser", Model: "spatially-skewed", ModelSeed: 1,
			OtherUsers: 2, Strategy: "MO", NumChaffs: 1, Horizon: 8, Runs: 32, Seed: 12345, Workers: 3},
		{Name: "mixed", Kind: "mixed", Strategies: []string{"IM", "MO"}, Horizon: 12, Runs: 25, Seed: 3},
		{Name: "hetero", Kind: "hetero", Strategy: "MO",
			Population: []Member{{Strategy: "IM", Count: 2}, {Count: 1}}, Horizon: 10, Runs: 21, Seed: 4},
		// mecbatch also exercises the scalar (cost curve) merges.
		{Name: "mec", Kind: "mecbatch", Model: "grid", GridW: 4, GridH: 4,
			Strategy: "MO", NumChaffs: 2, Horizon: 15, Runs: 26, Seed: 5},
	}
	for _, sp := range specs {
		t.Run(sp.Name, func(t *testing.T) {
			whole, err := RunJob(context.Background(), Job{Spec: sp})
			if err != nil {
				t.Fatal(err)
			}
			want := marshalStable(t, whole)
			for _, count := range []int{2, 3} {
				merged := runShards(t, sp, count)
				if got := marshalStable(t, merged); !reflect.DeepEqual(want, got) {
					t.Fatalf("%d shards: merged report differs from whole run:\n%s\n%s", count, got, want)
				}
			}
		})
	}
}

// TestJobMatchesSimPins replays the sim regression pins through the Job
// API: the registry path must aggregate the exact same streams.
func TestJobMatchesSimPins(t *testing.T) {
	rep, err := RunJob(context.Background(), Job{Spec: Spec{
		Kind: "single", Model: "spatially-skewed", ModelSeed: 99,
		Strategy: "MO", NumChaffs: 2, Horizon: 8, Runs: 32, Seed: 12345, Workers: 3,
	}})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := rep.Summary()
	if err != nil {
		t.Fatal(err)
	}
	// The pinned values from internal/sim/regress_test.go (MO-basic).
	wantPerSlot := []float64{0.21875, 0.09375000000000003, 0.09375000000000001, 0.0625, 0.0625, 0.03125, 0, 0.03125}
	const wantOverall, tol = 0.07421875, 1e-12
	for i := range wantPerSlot {
		if math.Abs(sum.PerSlot[i]-wantPerSlot[i]) > tol {
			t.Fatalf("PerSlot[%d] = %v, want %v", i, sum.PerSlot[i], wantPerSlot[i])
		}
	}
	if math.Abs(sum.Overall-wantOverall) > tol {
		t.Fatalf("Overall = %v, want %v", sum.Overall, wantOverall)
	}
	if sum.Runs != 32 || rep.TotalRuns != 32 || !rep.Complete() {
		t.Fatalf("coverage: runs %d, total %d", sum.Runs, rep.TotalRuns)
	}
}

// TestRunJobCancel proves cancellation crosses the scenario layer into
// the engine: a job cancelled mid-run returns context.Canceled promptly.
func TestRunJobCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	begin := time.Now()
	_, err := RunJob(ctx, Job{Spec: Spec{
		Kind: "single", Strategy: "MO", Horizon: 200, Runs: 5_000_000, Seed: 1,
	}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(begin); elapsed > 10*time.Second {
		t.Fatalf("cancelled job still took %v", elapsed)
	}
}

func TestRunJobValidation(t *testing.T) {
	if _, err := RunJob(context.Background(), Job{}); err == nil {
		t.Fatal("empty kind accepted")
	}
	if _, err := RunJob(context.Background(), Job{Spec: Spec{Kind: "nope"}}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := RunJob(context.Background(), Job{
		Spec:  Spec{Kind: "single", Strategy: "MO", Runs: 4, Horizon: 5},
		Shard: engine.Shard{Index: 3, Count: 2},
	}); err == nil {
		t.Fatal("invalid shard accepted")
	}
}

// TestReportProvenance checks the envelope carries what a foreign
// process needs to trust and reproduce the partial.
func TestReportProvenance(t *testing.T) {
	sp := Spec{Kind: "single", Strategy: "IM", Horizon: 6, Runs: 10, Seed: 8}
	rep, err := RunJob(context.Background(), Job{Spec: sp, Shard: engine.Shard{Index: 1, Count: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Name != "single" || rep.Kind != "single" || rep.Seed != 8 || rep.Horizon != 6 {
		t.Fatalf("header: %+v", rep)
	}
	if rep.TotalRuns != 10 || rep.RunStart != 5 || rep.RunCount != 5 || rep.Complete() {
		t.Fatalf("coverage: %+v", rep)
	}
	if rep.Stream == "" || rep.ElapsedMS < 0 {
		t.Fatalf("provenance: stream %q elapsed %v", rep.Stream, rep.ElapsedMS)
	}
	var spec Spec
	if err := json.Unmarshal(rep.Spec, &spec); err != nil {
		t.Fatal(err)
	}
	if spec.Strategy != "IM" || spec.Horizon != 6 {
		t.Fatalf("spec echo: %+v", spec)
	}
}
