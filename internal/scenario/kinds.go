package scenario

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"chaffmec/internal/chaff"
	"chaffmec/internal/detect"
	"chaffmec/internal/engine"
	"chaffmec/internal/markov"
	"chaffmec/internal/multiuser"
	"chaffmec/internal/report"
	"chaffmec/internal/sim"
)

// runSingle is the internal/sim scenario.
func runSingle(ctx context.Context, sp Spec, shard engine.Shard) (*report.Report, error) {
	if sp.Strategy == "" {
		return nil, errors.New(`scenario: kind "single" needs a strategy`)
	}
	chain, err := buildChain(sp.Model, sp)
	if err != nil {
		return nil, err
	}
	strat, err := chaff.NewByName(sp.Strategy, chain)
	if err != nil {
		return nil, err
	}
	sc := sim.Scenario{
		Chain:     chain,
		Strategy:  strat,
		NumChaffs: sp.NumChaffs,
		Horizon:   sp.Horizon,
	}
	if sp.Advanced {
		gamma, err := specGamma(sp, chain)
		if err != nil {
			return nil, err
		}
		sc.Detector = sim.AdvancedDetector
		sc.Gamma = gamma
	}
	res, err := sim.Run(ctx, sc, sp.options(shard))
	if err != nil {
		return nil, err
	}
	rep := sp.envelope(shard)
	rep.Series = map[string]engine.SeriesSnapshot{
		report.SeriesTracking:  res.TrackStats.Snapshot(),
		report.SeriesDetection: res.DetectionStats.Snapshot(),
	}
	return rep, nil
}

// runMultiuser is the internal/multiuser scenario, optionally with the
// strategy-aware advanced eavesdropper.
func runMultiuser(ctx context.Context, sp Spec, shard engine.Shard) (*report.Report, error) {
	chain, err := buildChain(sp.Model, sp)
	if err != nil {
		return nil, err
	}
	cfg := multiuser.Config{TargetChain: chain, Horizon: sp.Horizon}
	if sp.OtherUsers > 0 {
		other := chain
		if sp.OtherModel != sp.Model {
			if other, err = buildChain(sp.OtherModel, sp); err != nil {
				return nil, err
			}
			if other.NumStates() != chain.NumStates() {
				return nil, fmt.Errorf("scenario: other model %q has %d cells, target has %d",
					sp.OtherModel, other.NumStates(), chain.NumStates())
			}
		}
		for i := 0; i < sp.OtherUsers; i++ {
			cfg.OtherChains = append(cfg.OtherChains, other)
		}
	}
	if sp.Strategy != "" {
		if cfg.Strategy, err = chaff.NewByName(sp.Strategy, chain); err != nil {
			return nil, err
		}
		cfg.NumChaffs = sp.NumChaffs
	}
	if sp.Advanced {
		if sp.Strategy == "" {
			return nil, errors.New("scenario: advanced eavesdropper needs a strategy to recognize")
		}
		if cfg.Gamma, err = specGamma(sp, chain); err != nil {
			return nil, err
		}
	}
	res, err := multiuser.Run(ctx, cfg, sp.options(shard))
	if err != nil {
		return nil, err
	}
	rep := sp.envelope(shard)
	rep.Series = map[string]engine.SeriesSnapshot{
		report.SeriesTracking: res.TrackStats.Snapshot(),
	}
	return rep, nil
}

// specGamma resolves the advanced eavesdropper's strategy map: the
// injected Spec.Gamma when present, else the Γ of Spec.Strategy.
func specGamma(sp Spec, chain *markov.Chain) (detect.GammaFunc, error) {
	if sp.Gamma != nil {
		return sp.Gamma, nil
	}
	return chaff.GammaByName(sp.Strategy, chain)
}

// unionStrategy composes several chaff strategies into one population:
// each member generates `per` chaffs for the same user trajectory, in
// listed order (so RNG draws match running the members back to back).
type unionStrategy struct {
	strategies []chaff.Strategy
	per        int
}

func (u *unionStrategy) Name() string { return "mixed" }

func (u *unionStrategy) GenerateChaffs(rng *rand.Rand, user markov.Trajectory, numChaffs int) ([]markov.Trajectory, error) {
	if want := u.per * len(u.strategies); numChaffs != want {
		return nil, fmt.Errorf("scenario: mixed population generates %d chaffs, asked for %d", want, numChaffs)
	}
	out := make([]markov.Trajectory, 0, numChaffs)
	for _, s := range u.strategies {
		chaffs, err := s.GenerateChaffs(rng, user, u.per)
		if err != nil {
			return nil, fmt.Errorf("scenario: %s chaffs: %w", s.Name(), err)
		}
		out = append(out, chaffs...)
	}
	return out, nil
}

// runMixed evaluates a mixed-strategy chaff population: every strategy in
// Strategies contributes NumChaffs chaffs for the same user, and the
// basic ML eavesdropper observes the union. The population composes into
// a single chaff.Strategy, so execution is plain sim.Run on the engine.
func runMixed(ctx context.Context, sp Spec, shard engine.Shard) (*report.Report, error) {
	if len(sp.Strategies) == 0 {
		return nil, errors.New(`scenario: kind "mixed" needs strategies`)
	}
	chain, err := buildChain(sp.Model, sp)
	if err != nil {
		return nil, err
	}
	union := &unionStrategy{per: sp.NumChaffs}
	for _, name := range sp.Strategies {
		s, err := chaff.NewByName(name, chain)
		if err != nil {
			return nil, err
		}
		union.strategies = append(union.strategies, s)
	}
	res, err := sim.Run(ctx, sim.Scenario{
		Chain:     chain,
		Strategy:  union,
		NumChaffs: sp.NumChaffs * len(union.strategies),
		Horizon:   sp.Horizon,
	}, sp.options(shard))
	if err != nil {
		return nil, err
	}
	rep := sp.envelope(shard)
	rep.Series = map[string]engine.SeriesSnapshot{
		report.SeriesTracking:  res.TrackStats.Snapshot(),
		report.SeriesDetection: res.DetectionStats.Snapshot(),
	}
	return rep, nil
}

// runHetero evaluates a heterogeneous population: every Population
// member contributes Count coexisting users following their own mobility
// model and running their own chaff strategy, the target optionally
// protects itself with Spec.Strategy, and the (basic or strategy-aware)
// eavesdropper observes the union. Execution is multiuser.Run with
// per-other strategies.
func runHetero(ctx context.Context, sp Spec, shard engine.Shard) (*report.Report, error) {
	if len(sp.Population) == 0 {
		return nil, errors.New(`scenario: kind "hetero" needs a population`)
	}
	chain, err := buildChain(sp.Model, sp)
	if err != nil {
		return nil, err
	}
	cfg := multiuser.Config{TargetChain: chain, Horizon: sp.Horizon}
	if sp.Strategy != "" {
		if cfg.Strategy, err = chaff.NewByName(sp.Strategy, chain); err != nil {
			return nil, err
		}
		cfg.NumChaffs = sp.NumChaffs
	}
	if sp.Advanced {
		if sp.Strategy == "" {
			return nil, errors.New("scenario: advanced eavesdropper needs a strategy to recognize")
		}
		if cfg.Gamma, err = specGamma(sp, chain); err != nil {
			return nil, err
		}
	}
	for mi, m := range sp.Population {
		mchain := chain
		if m.Model != "" && m.Model != sp.Model {
			if mchain, err = buildChain(m.Model, sp); err != nil {
				return nil, fmt.Errorf("scenario: population member %d: %w", mi, err)
			}
			if mchain.NumStates() != chain.NumStates() {
				return nil, fmt.Errorf("scenario: population member %d model %q has %d cells, target has %d",
					mi, m.Model, mchain.NumStates(), chain.NumStates())
			}
		}
		var mstrat chaff.Strategy
		chaffs := 0
		if m.Strategy != "" {
			if mstrat, err = chaff.NewByName(m.Strategy, mchain); err != nil {
				return nil, fmt.Errorf("scenario: population member %d: %w", mi, err)
			}
			if chaffs = m.NumChaffs; chaffs <= 0 {
				chaffs = 1
			}
		}
		count := m.Count
		if count <= 0 {
			count = 1
		}
		for i := 0; i < count; i++ {
			cfg.OtherChains = append(cfg.OtherChains, mchain)
			cfg.OtherStrategies = append(cfg.OtherStrategies, mstrat)
			cfg.OtherNumChaffs = append(cfg.OtherNumChaffs, chaffs)
		}
	}
	res, err := multiuser.Run(ctx, cfg, sp.options(shard))
	if err != nil {
		return nil, err
	}
	rep := sp.envelope(shard)
	rep.Series = map[string]engine.SeriesSnapshot{
		report.SeriesTracking: res.TrackStats.Snapshot(),
	}
	return rep, nil
}
