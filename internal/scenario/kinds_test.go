package scenario

import (
	"strings"
	"testing"
)

func TestHeteroPopulation(t *testing.T) {
	// A target among a heterogeneous population: protected others add
	// cover, so the target is tracked no better than when coexisting with
	// the same users unprotected.
	base := Spec{Kind: "multiuser", Model: "spatially-skewed", OtherUsers: 3,
		Runs: 120, Horizon: 30, Seed: 7}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	prot, err := Run(Spec{Kind: "hetero", Model: "spatially-skewed",
		Population: []Member{
			{Strategy: "MO", NumChaffs: 2, Count: 2},
			{Count: 1},
		},
		Runs: 120, Horizon: 30, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if prot.Runs != 120 || len(prot.PerSlot) != 30 {
		t.Fatalf("shape: %d runs, %d slots", prot.Runs, len(prot.PerSlot))
	}
	if prot.Overall > plain.Overall+0.05 {
		t.Fatalf("hetero population overall %v above unprotected-others %v", prot.Overall, plain.Overall)
	}

	if _, err := Run(Spec{Kind: "hetero", Runs: 1, Horizon: 5}); err == nil {
		t.Fatal("hetero without population accepted")
	}
	if _, err := Run(Spec{Kind: "hetero", Population: []Member{{Strategy: "nope"}}, Runs: 1, Horizon: 5}); err == nil {
		t.Fatal("unknown member strategy accepted")
	}
	if _, err := Run(Spec{Kind: "hetero", Model: "grid", GridW: 3, GridH: 3,
		Population: []Member{{Model: "non-skewed"}}, Runs: 1, Horizon: 5}); err == nil {
		t.Fatal("mismatched member cell space accepted")
	}
}

func TestTraceKind(t *testing.T) {
	if testing.Short() {
		t.Skip("trace lab build")
	}
	sp := Spec{Kind: "trace", Nodes: 40, Horizon: 25, TraceUser: 0,
		Strategy: "OO", NumChaffs: 1, Runs: 8, Seed: 6}
	res, err := Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 8 || len(res.PerSlot) != 25 {
		t.Fatalf("shape: %d runs, %d slots", res.Runs, len(res.PerSlot))
	}
	if res.Overall < 0 || res.Overall > 1 {
		t.Fatalf("overall %v out of range", res.Overall)
	}
	// The chaff must lower the top user's accuracy against the chaff-free
	// baseline of the same fleet.
	baseline, err := Run(Spec{Kind: "trace", Nodes: 40, Horizon: 25, TraceUser: 0,
		Runs: 1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overall > baseline.Overall+1e-9 {
		t.Fatalf("OO chaff raised accuracy: %v vs baseline %v", res.Overall, baseline.Overall)
	}

	if _, err := Run(Spec{Kind: "trace", Advanced: true, Runs: 1, Horizon: 20}); err == nil {
		t.Fatal("advanced trace eavesdropper without strategy accepted")
	}
	if _, err := Run(Spec{Kind: "trace", TraceUser: -1, Runs: 1, Horizon: 20}); err == nil {
		t.Fatal("negative trace user accepted")
	}
}

func TestMecbatchKind(t *testing.T) {
	res, err := Run(Spec{Kind: "mecbatch", Model: "grid", GridW: 4, GridH: 4,
		Strategy: "MO", NumChaffs: 2, Horizon: 20, Runs: 30, Seed: 5,
		MigrationFailProb: 0.1, Threshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 30 || len(res.PerSlot) != 20 {
		t.Fatalf("shape: %d runs, %d slots", res.Runs, len(res.PerSlot))
	}

	// The raw report additionally carries the cost curves.
	rep, err := RunJob(nil, Job{Spec: Spec{Kind: "mecbatch", Model: "grid", GridW: 4, GridH: 4,
		Strategy: "MO", NumChaffs: 2, Horizon: 20, Runs: 30, Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{ScalarOverall, ScalarMigrationCost, ScalarChaffCost,
		ScalarCommCost, ScalarMigrations, ScalarFailedMigrations, ScalarQoSViolations} {
		sc, err := rep.ScalarStats(name)
		if err != nil {
			t.Fatal(err)
		}
		if sc.N() != 30 {
			t.Fatalf("scalar %q aggregated %d episodes", name, sc.N())
		}
	}
	if chaffCost, _ := rep.ScalarStats(ScalarChaffCost); chaffCost.Mean() <= 0 {
		t.Fatal("chaff cost curve empty")
	}

	if _, err := Run(Spec{Kind: "mecbatch", Runs: 1, Horizon: 5}); err == nil {
		t.Fatal("mecbatch without strategy accepted")
	}
	if _, err := Run(Spec{Kind: "mecbatch", Strategy: "OO", Model: "grid", Runs: 1, Horizon: 5}); err == nil {
		t.Fatal("offline-only controller accepted")
	}
	_, err = Run(Spec{Kind: "mecbatch", Strategy: "MO", Model: "non-skewed", Threshold: 2, Runs: 1, Horizon: 5})
	if err == nil || !strings.Contains(err.Error(), "threshold") {
		t.Fatalf("threshold without grid accepted: %v", err)
	}
}
