package scenario

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"chaffmec/internal/chaff"
	"chaffmec/internal/engine"
	"chaffmec/internal/mec"
	"chaffmec/internal/mobility"
	"chaffmec/internal/report"
)

// Scalar names the "mecbatch" kind publishes alongside the tracking
// series: the per-episode overall accuracy and the cost-curve /
// operations counters of the MEC substrate.
const (
	ScalarOverall          = "overall"
	ScalarMigrationCost    = "migration_cost"
	ScalarChaffCost        = "chaff_cost"
	ScalarCommCost         = "comm_cost"
	ScalarMigrations       = "migrations"
	ScalarFailedMigrations = "failed_migrations"
	ScalarQoSViolations    = "qos_violations"
)

// runMecbatch is the MEC substrate episode batch: each Monte-Carlo run
// simulates one end-to-end episode — a user walking the cell space, a
// real service placed by the (follow-user or threshold) policy, chaffs
// driven by the online form of Strategy, migration failure injection,
// and an eavesdropper reconstructing trajectories from the control-plane
// event log — and the batch aggregates the tracking series together with
// the priced cost breakdown. Strategy must name an online controller
// (IM, CML, MO, RMO, Rollout).
//
// Spec fields used: Model/GridW/GridH/PMove (a "grid" model also
// supplies coordinates for the per-hop communication cost),
// Strategy/NumChaffs, MigrationFailProb, Threshold (tolerated
// user-service distance in hops; needs the "grid" model; 0 follows the
// user every slot).
func runMecbatch(ctx context.Context, sp Spec, shard engine.Shard) (*report.Report, error) {
	if sp.Strategy == "" {
		return nil, errors.New(`scenario: kind "mecbatch" needs a strategy (an online controller)`)
	}
	onGrid := strings.EqualFold(strings.TrimSpace(sp.Model), "grid")
	var grid mobility.Grid
	if onGrid {
		var err error
		if grid, err = mobility.NewGrid(sp.GridW, sp.GridH); err != nil {
			return nil, err
		}
	} else if sp.Threshold > 0 {
		return nil, fmt.Errorf("scenario: threshold policy needs the %q model for distances, got %q", "grid", sp.Model)
	}
	chain, err := buildChain(sp.Model, sp)
	if err != nil {
		return nil, err
	}
	// Probe once so "offline-only strategy" fails before worker setup.
	if s, err := chaff.NewByName(sp.Strategy, chain); err != nil {
		return nil, err
	} else if _, ok := s.(chaff.OnlineController); !ok {
		return nil, fmt.Errorf("scenario: strategy %q is offline-only (needs the user's future trajectory)", sp.Strategy)
	}
	newController := func() (chaff.OnlineController, error) {
		s, err := chaff.NewByName(sp.Strategy, chain)
		if err != nil {
			return nil, err
		}
		return s.(chaff.OnlineController), nil
	}
	cfg := mec.Config{
		Chain:             chain,
		NumChaffs:         sp.NumChaffs,
		Horizon:           sp.Horizon,
		Grid:              grid,
		MigrationFailProb: sp.MigrationFailProb,
	}
	if sp.Threshold > 0 {
		cfg.Policy = mec.ThresholdPolicy{Grid: grid, MaxHops: sp.Threshold}
	}
	res, err := mec.RunBatch(ctx, cfg, newController, sp.options(shard))
	if err != nil {
		return nil, err
	}
	rep := sp.envelope(shard)
	rep.Series = map[string]engine.SeriesSnapshot{
		report.SeriesTracking: res.Stats.Tracking.Snapshot(),
	}
	rep.Scalars = map[string]engine.ScalarSnapshot{
		ScalarOverall:          res.Stats.Overall.Snapshot(),
		ScalarMigrationCost:    res.Stats.MigrationCost.Snapshot(),
		ScalarChaffCost:        res.Stats.ChaffCost.Snapshot(),
		ScalarCommCost:         res.Stats.CommCost.Snapshot(),
		ScalarMigrations:       res.Stats.Migrations.Snapshot(),
		ScalarFailedMigrations: res.Stats.FailedMigrations.Snapshot(),
		ScalarQoSViolations:    res.Stats.QoSViolations.Snapshot(),
	}
	return rep, nil
}
