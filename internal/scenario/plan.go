package scenario

import (
	"math"

	"chaffmec/internal/engine"
	"chaffmec/internal/report"
)

// Plan is a job's round scheduler in reusable form: the one place that
// decides which run range to cover next, shared by in-process adaptive
// execution (RunAdaptive/ResumeJob) and by external executors — the
// distributed coordinator asks the same Plan for its extension rounds,
// which is what makes a fleet's round boundaries (and therefore the
// merged Report) bit-identical to a single process's.
//
// A Plan is a pure function of the spec: with a precision target the
// schedule is SE-driven (engine.Target's NextEnd projection); without
// one it degenerates to a single round covering the declared Runs.
type Plan struct {
	target engine.Target
	fixed  int
}

// NewPlan resolves a spec's round schedule. The error mirrors the
// spec's precision-block validation.
func NewPlan(sp Spec) (Plan, error) {
	sp = sp.withDefaults()
	t, err := sp.target()
	if err != nil {
		return Plan{}, err
	}
	return Plan{target: t, fixed: sp.options(engine.Shard{}).Normalized().Runs}, nil
}

// Adaptive reports whether the schedule is SE-targeted (rounds keep
// extending until the target stops them) rather than fixed-count.
func (p Plan) Adaptive() bool { return p.target.Enabled() }

// Target returns the normalized precision target (zero when fixed).
func (p Plan) Target() engine.Target { return p.target }

// FixedRuns returns the declared run count of a fixed schedule (and the
// default MaxRuns of an adaptive one).
func (p Plan) FixedRuns() int { return p.fixed }

// RoundPlan is Plan.Next's verdict: the next round's run range, or
// Done, together with the standard error the decision was based on.
type RoundPlan struct {
	// Start and End delimit the next round's run range [Start, End);
	// Start equals the accumulated coverage.
	Start, End int
	// SE is the tracked standard error of the accumulated report (NaN
	// before any coverage, and always NaN for fixed schedules).
	SE float64
	// Done reports that no further round is needed.
	Done bool
}

// Next schedules the round following the accumulated report (nil: no
// coverage yet). For adaptive schedules it evaluates the tracked SE on
// acc — an acc missing the tracked series/scalar is an error.
func (p Plan) Next(acc *report.Report) (RoundPlan, error) {
	n := 0
	if acc != nil {
		n = acc.RunCount
	}
	if p.target.Enabled() {
		se := math.NaN()
		if acc != nil && n > 0 {
			var err error
			if se, err = acc.TargetSE(p.target); err != nil {
				return RoundPlan{}, err
			}
		}
		if n > 0 && p.target.Done(n, se) {
			return RoundPlan{Start: n, End: n, SE: se, Done: true}, nil
		}
		return RoundPlan{Start: n, End: p.target.NextEnd(n, se), SE: se}, nil
	}
	if n >= p.fixed {
		return RoundPlan{Start: n, End: n, SE: math.NaN(), Done: true}, nil
	}
	return RoundPlan{Start: n, End: p.fixed, SE: math.NaN()}, nil
}

// Stamp fixes a round report's TotalRuns: adaptive rounds cannot know
// the final run count, so successive partials declare the MaxRuns cap
// until Finalize re-stamps the accumulated report. Fixed-schedule
// rounds already declare the right count and pass through unchanged.
func (p Plan) Stamp(rep *report.Report) {
	if p.target.Enabled() {
		rep.TotalRuns = p.target.MaxRuns
	}
}

// Finalize re-stamps the finished accumulated report's TotalRuns — the
// adaptively chosen count (its coverage), or the declared fixed count.
func (p Plan) Finalize(acc *report.Report) {
	if acc == nil {
		return
	}
	if p.target.Enabled() {
		acc.TotalRuns = acc.RunCount
	} else {
		acc.TotalRuns = p.fixed
	}
}

// SplitSpan plans the shards of one round: it splits the half-open run
// range [start, end) into at most parts contiguous non-empty spans of
// near-equal size (the same balanced arithmetic as engine.Shard's
// Index/Count split, so sizes differ by at most one run). Fewer than
// parts spans come back when the range is shorter than parts. This is
// the coordinator's shard planner; any contiguous decomposition merges
// bit-identically, so the choice of parts only affects load balance.
func SplitSpan(start, end, parts int) []engine.Shard {
	n := end - start
	if n <= 0 {
		return nil
	}
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	out := make([]engine.Shard, 0, parts)
	for i := 0; i < parts; i++ {
		a := start + i*n/parts
		b := start + (i+1)*n/parts
		out = append(out, engine.Span(a, b))
	}
	return out
}

// SplitSpanWeighted plans one round's shards for a heterogeneous
// fleet: it splits the half-open run range [start, end) into
// len(weights) contiguous spans whose sizes are proportional to the
// weights — entry i of the result is entry i of the weights, so a
// caller can attribute each span to the worker it planned it for. A
// span may come back EMPTY (Start == End) when its share rounds to
// zero runs (a zero or negative weight always does; so can any share
// when the range is shorter than the slot count). The union of the
// non-empty spans covers [start, end) exactly, and every rounded share
// is within one run of its exact n·wᵢ/Σw quota. Equal weights
// reproduce SplitSpan's balanced arithmetic. Like any contiguous
// decomposition, the split only moves load — merges stay bit-identical.
func SplitSpanWeighted(start, end int, weights []float64) []engine.Shard {
	n := end - start
	if n <= 0 || len(weights) == 0 {
		return nil
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	out := make([]engine.Shard, 0, len(weights))
	if total <= 0 {
		// All weights degenerate: fall back to a balanced split.
		for i := range weights {
			a := start + i*n/len(weights)
			b := start + (i+1)*n/len(weights)
			out = append(out, engine.Span(a, b))
		}
		return out
	}
	lo, cum := 0, 0.0
	for i, w := range weights {
		if w > 0 {
			cum += w
		}
		// Cumulative rounding keeps every boundary within one run of its
		// exact quota, so no share drifts as errors accumulate. The
		// epsilon pulls boundaries sitting a float-rounding hair below an
		// integer up onto it (equal weights then reproduce the integer
		// arithmetic of SplitSpan exactly).
		hi := int(math.Floor(float64(n)*cum/total + 1e-9))
		if hi < lo {
			hi = lo
		}
		if hi > n || i == len(weights)-1 {
			hi = n
		}
		out = append(out, engine.Span(start+lo, start+hi))
		lo = hi
	}
	return out
}
