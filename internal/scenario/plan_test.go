package scenario

import (
	"context"
	"math"
	"testing"

	"chaffmec/internal/engine"
	"chaffmec/internal/report"
)

func TestSplitSpanTiles(t *testing.T) {
	cases := []struct{ start, end, parts int }{
		{0, 100, 4}, {17, 94, 5}, {0, 3, 8}, {5, 6, 3}, {0, 7, 1},
	}
	for _, tc := range cases {
		spans := SplitSpan(tc.start, tc.end, tc.parts)
		if len(spans) == 0 {
			t.Fatalf("SplitSpan(%d,%d,%d) empty", tc.start, tc.end, tc.parts)
		}
		want := tc.parts
		if n := tc.end - tc.start; want > n {
			want = n
		}
		if len(spans) != want {
			t.Fatalf("SplitSpan(%d,%d,%d) = %d spans, want %d", tc.start, tc.end, tc.parts, len(spans), want)
		}
		at := tc.start
		lo, hi := tc.end, 0
		for _, s := range spans {
			if s.Start != at || s.End <= s.Start {
				t.Fatalf("SplitSpan(%d,%d,%d): span %s breaks the tiling at %d", tc.start, tc.end, tc.parts, s, at)
			}
			if n := s.End - s.Start; n < lo {
				lo = n
			} else if n > hi {
				hi = n
			}
			at = s.End
		}
		if at != tc.end {
			t.Fatalf("SplitSpan(%d,%d,%d) ends at %d", tc.start, tc.end, tc.parts, at)
		}
	}
	if got := SplitSpan(5, 5, 3); got != nil {
		t.Fatalf("empty range split = %v", got)
	}
	// Balanced: sizes differ by at most one run.
	for _, s := range SplitSpan(17, 94, 5) {
		if n := s.End - s.Start; n < (94-17)/5 || n > (94-17)/5+1 {
			t.Fatalf("unbalanced span %s", s)
		}
	}
}

// TestSplitSpanWeightedProperties is the weighted-split property test:
// over a grid of ranges and weight vectors (degenerate ones included),
// the result tiles the range exactly, stays aligned to the weight
// entries, and every share lands within one run of its exact
// n·wᵢ/Σw quota.
func TestSplitSpanWeightedProperties(t *testing.T) {
	cases := []struct {
		start, end int
		weights    []float64
	}{
		{0, 100, []float64{1, 1, 1, 1}},
		{17, 94, []float64{3, 1}},
		{0, 60, []float64{3, 3, 1, 1}},
		{0, 7, []float64{2, 5, 9}},
		{5, 6, []float64{1, 1, 1}},
		{0, 1000, []float64{0.25, 4, 0.5, 1, 2}},
		{3, 45, []float64{1, 0, 2}},   // zero weight: empty share
		{0, 10, []float64{-1, 1}},     // negative treated as zero
		{0, 12, []float64{0, 0}},      // all degenerate: balanced split
		{0, 3, []float64{1, 1, 1, 1}}, // more slots than runs
		{0, 1, []float64{1e-9, 1e9}},  // extreme skew
		{0, 100, []float64{7}},        // single slot takes everything
	}
	for _, tc := range cases {
		spans := SplitSpanWeighted(tc.start, tc.end, tc.weights)
		if len(spans) != len(tc.weights) {
			t.Fatalf("SplitSpanWeighted(%d,%d,%v) = %d spans, want one per weight", tc.start, tc.end, tc.weights, len(spans))
		}
		n := tc.end - tc.start
		total := 0.0
		for _, w := range tc.weights {
			if w > 0 {
				total += w
			}
		}
		at := tc.start
		for i, s := range spans {
			if s.Start != at || s.End < s.Start {
				t.Fatalf("SplitSpanWeighted(%d,%d,%v): span %d = %s breaks the tiling at %d", tc.start, tc.end, tc.weights, i, s, at)
			}
			at = s.End
			if total <= 0 {
				continue // balanced fallback, checked by the tiling alone
			}
			w := tc.weights[i]
			if w < 0 {
				w = 0
			}
			exact := float64(n) * w / total
			if got := float64(s.End - s.Start); math.Abs(got-exact) >= 1+1e-6 {
				t.Fatalf("SplitSpanWeighted(%d,%d,%v): span %d covers %g runs, exact share %g (off by ≥1)", tc.start, tc.end, tc.weights, i, got, exact)
			}
			if w == 0 && s.End != s.Start {
				t.Fatalf("SplitSpanWeighted(%d,%d,%v): zero-weight span %d got runs %s", tc.start, tc.end, tc.weights, i, s)
			}
		}
		if at != tc.end {
			t.Fatalf("SplitSpanWeighted(%d,%d,%v) ends at %d, want %d", tc.start, tc.end, tc.weights, at, tc.end)
		}
	}
	if got := SplitSpanWeighted(5, 5, []float64{1, 2}); got != nil {
		t.Fatalf("empty range split = %v", got)
	}
	if got := SplitSpanWeighted(0, 10, nil); got != nil {
		t.Fatalf("no weights split = %v", got)
	}
	// Equal weights reproduce SplitSpan's balanced integer arithmetic
	// exactly — the coordinator's uniform fleets keep their old shards.
	for _, parts := range []int{1, 2, 3, 5, 8} {
		weights := make([]float64, parts)
		for i := range weights {
			weights[i] = 2.5
		}
		flat := SplitSpan(17, 94, parts)
		weighted := SplitSpanWeighted(17, 94, weights)
		for i := range flat {
			if flat[i] != weighted[i] {
				t.Fatalf("equal-weight split diverges from SplitSpan at %d: %s vs %s", i, weighted[i], flat[i])
			}
		}
	}
}

// TestPlanReplaysAdaptiveRounds pins the contract the coordinator
// depends on: driving Plan.Next by hand over the accumulating report
// yields exactly the rounds RunAdaptive executes — same boundaries,
// same SE decisions, same final stamp.
func TestPlanReplaysAdaptiveRounds(t *testing.T) {
	sp := Spec{
		Kind: "single", Strategy: "MO", Runs: 300, Horizon: 8, Seed: 11,
		Precision: &Precision{TargetSE: 0.05, MinRuns: 16, MaxRuns: 300},
	}
	var rounds []Round
	want, err := RunAdaptive(context.Background(), Job{Spec: sp}, func(r Round) { rounds = append(rounds, r) })
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) < 2 {
		t.Fatalf("adaptive job ran %d rounds; the replay test needs >= 2", len(rounds))
	}

	plan, err := NewPlan(sp)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Adaptive() {
		t.Fatal("plan not adaptive")
	}
	var acc *report.Report
	for i := 0; ; i++ {
		rp, err := plan.Next(acc)
		if err != nil {
			t.Fatal(err)
		}
		if rp.Done {
			if i != len(rounds) {
				t.Fatalf("plan stopped after %d rounds, RunAdaptive ran %d", i, len(rounds))
			}
			break
		}
		if i >= len(rounds) || rp.Start != rounds[i].Start || rp.End != rounds[i].End {
			t.Fatalf("round %d: plan schedules [%d,%d), RunAdaptive ran %+v", i, rp.Start, rp.End, rounds[i])
		}
		rep, err := RunJob(context.Background(), Job{Spec: sp, Shard: engine.Span(rp.Start, rp.End)})
		if err != nil {
			t.Fatal(err)
		}
		plan.Stamp(rep)
		if acc == nil {
			acc = rep
		} else if err := acc.Extend(rep); err != nil {
			t.Fatal(err)
		}
	}
	plan.Finalize(acc)
	if acc.TotalRuns != want.TotalRuns || acc.RunCount != want.RunCount {
		t.Fatalf("replay covers %d/%d runs, RunAdaptive %d/%d",
			acc.RunCount, acc.TotalRuns, want.RunCount, want.TotalRuns)
	}
}

func TestPlanFixedSchedule(t *testing.T) {
	plan, err := NewPlan(Spec{Kind: "single", Strategy: "MO", Runs: 40})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Adaptive() {
		t.Fatal("fixed spec produced an adaptive plan")
	}
	rp, err := plan.Next(nil)
	if err != nil || rp.Done || rp.Start != 0 || rp.End != 40 || !math.IsNaN(rp.SE) {
		t.Fatalf("first fixed round = %+v, %v", rp, err)
	}
	done, err := plan.Next(&report.Report{RunCount: 40})
	if err != nil || !done.Done {
		t.Fatalf("fixed plan not done after full coverage: %+v, %v", done, err)
	}
}
