// Package scenario is the one experiment API above the Monte-Carlo
// engine: a registry of named scenario kinds, each a function from a
// declarative Spec to a serializable report.Report, plus the Job
// envelope (spec + shard selector) and a JSON loader, so new experiments
// — larger populations, different eavesdroppers, mixed chaff strategies,
// trace-driven fleets, MEC episode batches — are a config entry rather
// than a new package. Every kind supports context cancellation and
// contiguous run-range sharding: complementary shards of one Job, run by
// different processes and merged with report.Merge, reproduce the
// single-process Report bit-for-bit.
//
// Execution is adaptive and resumable through the same registry path: a
// Spec carrying a Precision block runs in SE-targeted rounds (RunJob
// dispatches to RunAdaptive — explicit-range shards [n₁,n₂) extend the
// covered range until the tracked standard error meets the target), and
// ResumeJob continues any checkpointed partial Report into the
// bit-for-bit result of the uninterrupted run. cmd/experiments exposes
// the layer via -scenario/-shard/-merge/-target-se/-resume; the chaffmec
// facade via RunJob/RunAdaptiveJob/ResumeJob.
//
// Built-in kinds:
//
//   - "single": one user, one chaff strategy, basic or strategy-aware
//     (advanced) eavesdropper — the internal/sim scenario.
//   - "multiuser": a target among coexisting users, optional chaffs,
//     basic or advanced eavesdropper — the internal/multiuser scenario.
//   - "mixed": a mixed-strategy chaff population: every strategy listed
//     in Strategies contributes NumChaffs chaffs for the same user, and
//     the basic eavesdropper observes the union.
//   - "hetero": a heterogeneous population — every coexisting user in
//     Population follows its own mobility model and runs its own chaff
//     strategy, and the eavesdropper observes everything.
//   - "trace": a TraceLab-backed fleet (synthetic taxi traces quantised
//     into Voronoi cells, Section VII-B): the fixed observed population
//     plus per-run chaff streams protecting one top-tracked user.
//   - "mecbatch": MEC substrate episodes (migration events, failure
//     injection, cost accounting) aggregated with cost curves.
//
// Mobility models are named by the paper's labels ("non-skewed",
// "spatially-skewed", "temporally-skewed", "both-skewed") or "grid" for a
// 2-D lazy-walk over a GridW×GridH cell layout at any scale.
package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"chaffmec/internal/detect"
	"chaffmec/internal/engine"
	"chaffmec/internal/markov"
	"chaffmec/internal/mobility"
	"chaffmec/internal/report"
	"chaffmec/internal/rng"
)

// Member declares one slice of the "hetero" kind's population.
type Member struct {
	// Strategy protects this member's Count users with NumChaffs chaffs
	// each (default 1 chaff); empty leaves them unprotected.
	Strategy  string `json:"strategy,omitempty"`
	NumChaffs int    `json:"num_chaffs,omitempty"`
	// Count is the number of users in this slice (default 1).
	Count int `json:"count,omitempty"`
	// Model overrides the spec's mobility model for this slice.
	Model string `json:"model,omitempty"`
}

// Spec declares one scenario instance. Zero-valued fields take the
// defaults documented per field; kinds ignore fields that do not apply.
type Spec struct {
	// Name labels the scenario in outputs (default: its kind).
	Name string `json:"name,omitempty"`
	// Kind selects the registered runner (see Kinds).
	Kind string `json:"kind"`

	// Model names the user's mobility model: one of the paper's synthetic
	// models ("non-skewed", "spatially-skewed", "temporally-skewed",
	// "both-skewed") or "grid" (default "non-skewed").
	Model string `json:"model,omitempty"`
	// Chain, when non-nil, is used as the target's mobility model instead
	// of building one from Model — the hook library callers (the chaffmec
	// facade's Evaluate) use to run custom chains through the registry.
	// Not expressible in JSON configs.
	Chain *markov.Chain `json:"-"`
	// Cells sizes the synthetic models (default 10, the paper's L).
	Cells int `json:"cells,omitempty"`
	// ModelSeed seeds the random-matrix models (and the "trace" kind's
	// synthetic fleet); 0 derives it from Seed the same way
	// internal/figures does.
	ModelSeed int64 `json:"model_seed,omitempty"`
	// GridW, GridH size the "grid" model (default 5×5); PMove is its
	// per-slot move probability (default 0.7).
	GridW int     `json:"grid_w,omitempty"`
	GridH int     `json:"grid_h,omitempty"`
	PMove float64 `json:"p_move,omitempty"`

	// Strategy is the chaff strategy name (see chaff.Names); empty means
	// unprotected where the kind allows it ("multiuser", "hetero",
	// "trace"). For "mecbatch" it must name an online controller (IM,
	// CML, MO, RMO, Rollout).
	Strategy string `json:"strategy,omitempty"`
	// Strategies lists the population of the "mixed" kind.
	Strategies []string `json:"strategies,omitempty"`
	// NumChaffs is the chaff budget per strategy (default 1).
	NumChaffs int `json:"num_chaffs,omitempty"`
	// Advanced upgrades the eavesdropper to the strategy-aware detector
	// of Section VI-A (requires a strategy with a deterministic Γ).
	Advanced bool `json:"advanced,omitempty"`
	// Gamma, when non-nil and Advanced is set, is the strategy map the
	// advanced eavesdropper assumes, instead of deriving it from
	// Strategy — the injection hook paired with Chain (the facade's
	// Evaluate passes the Γ it already probed). Not expressible in JSON.
	Gamma detect.GammaFunc `json:"-"`

	// OtherUsers adds coexisting users ("multiuser" kind), following
	// OtherModel (default: the target's model).
	OtherUsers int    `json:"other_users,omitempty"`
	OtherModel string `json:"other_model,omitempty"`

	// Population declares the "hetero" kind's coexisting users.
	Population []Member `json:"population,omitempty"`

	// Nodes sizes the "trace" kind's synthetic fleet before inactivity
	// filtering (default 174, the paper's extraction); TraceUser selects
	// the protected user by tracked-ness rank (0 = most tracked).
	Nodes     int `json:"nodes,omitempty"`
	TraceUser int `json:"trace_user,omitempty"`

	// MigrationFailProb drops each "mecbatch" migration independently
	// with this probability; Threshold switches the real-service policy
	// to tolerate that many grid hops of user-service distance
	// (0: follow the user every slot).
	MigrationFailProb float64 `json:"migration_fail_prob,omitempty"`
	Threshold         int     `json:"threshold,omitempty"`

	// Horizon is T (default 100); Runs the Monte-Carlo repetitions
	// (default 1000); Seed the experiment seed; Workers the parallelism
	// cap (default GOMAXPROCS).
	Horizon int   `json:"horizon,omitempty"`
	Runs    int   `json:"runs,omitempty"`
	Seed    int64 `json:"seed,omitempty"`
	Workers int   `json:"workers,omitempty"`

	// Precision, when non-nil with a positive target, switches the
	// scenario to adaptive round-based execution: runs are added in
	// rounds until the tracked standard error reaches the target (or
	// MaxRuns), instead of executing a fixed Runs count. Every kind runs
	// adaptively through the same dispatch (RunJob).
	Precision *Precision `json:"precision,omitempty"`
}

// Precision is a Spec's adaptive-execution block: the standard-error
// goal and run-count bounds of the precision target (engine.Target in
// declarative form).
type Precision struct {
	// TargetSE is the standard-error goal the adaptive rounds chase.
	TargetSE float64 `json:"target_se"`
	// Series names the tracked series (its worst per-slot standard error
	// is compared against TargetSE); Scalar instead names a scalar
	// aggregate, e.g. a "mecbatch" cost counter. Both empty tracks the
	// canonical "tracking" series.
	Series string `json:"series,omitempty"`
	Scalar string `json:"scalar,omitempty"`
	// MinRuns (default 32) floors the run count before the goal may
	// stop the experiment; MaxRuns (default: the spec's Runs) caps it.
	MinRuns int `json:"min_runs,omitempty"`
	MaxRuns int `json:"max_runs,omitempty"`
}

// target resolves the spec's precision block into a normalized
// engine.Target; the zero Target (disabled) when the spec has none.
func (sp Spec) target() (engine.Target, error) {
	p := sp.Precision
	if p == nil {
		return engine.Target{}, nil
	}
	t := engine.Target{
		Series: p.Series, Scalar: p.Scalar,
		SE: p.TargetSE, MinRuns: p.MinRuns, MaxRuns: p.MaxRuns,
	}
	t = t.Normalized(sp.options(engine.Shard{}).Normalized().Runs)
	if err := t.Validate(); err != nil {
		return engine.Target{}, err
	}
	return t, nil
}

func (sp Spec) withDefaults() Spec {
	if sp.Name == "" {
		sp.Name = sp.Kind
	}
	if sp.Model == "" {
		sp.Model = "non-skewed"
	}
	if sp.Cells <= 0 {
		sp.Cells = 10
	}
	if sp.GridW <= 0 {
		sp.GridW = 5
	}
	if sp.GridH <= 0 {
		sp.GridH = 5
	}
	if sp.PMove <= 0 {
		sp.PMove = 0.7
	}
	if sp.NumChaffs <= 0 {
		sp.NumChaffs = 1
	}
	if sp.Horizon <= 0 {
		sp.Horizon = 100
	}
	if sp.OtherModel == "" {
		sp.OtherModel = sp.Model
	}
	return sp
}

// options assembles the engine options of a (spec, shard) pair — the one
// place the Monte-Carlo knobs of the Spec meet the Job's shard selector.
func (sp Spec) options(shard engine.Shard) engine.Options {
	return engine.Options{Runs: sp.Runs, Seed: sp.Seed, Workers: sp.Workers, Shard: shard}
}

// envelope starts a Report for the (spec, shard) pair with the full
// provenance header filled in; runners attach their series and scalars.
func (sp Spec) envelope(shard engine.Shard) *report.Report {
	o := sp.options(shard).Normalized()
	start, end := o.Range()
	return &report.Report{
		Name: sp.Name, Kind: sp.Kind,
		Seed: o.Seed, Horizon: sp.Horizon,
		TotalRuns: o.Runs, RunStart: start, RunCount: end - start,
		Stream: rng.StreamVersion,
	}
}

// Result is a scenario's aggregated outcome in digest form — the
// human-facing view of a complete Report.
type Result struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// PerSlot is the eavesdropper's mean per-slot tracking accuracy,
	// PerSlotStdErr its standard error, Overall its time average.
	PerSlot       []float64 `json:"per_slot"`
	PerSlotStdErr []float64 `json:"per_slot_stderr"`
	Overall       float64   `json:"overall"`
	// Runs echoes the aggregated repetition count.
	Runs int `json:"runs"`
}

// ResultOf digests a report into the Result view.
func ResultOf(r *report.Report) (*Result, error) {
	sum, err := r.Summary()
	if err != nil {
		return nil, err
	}
	return &Result{
		Name: r.Name, Kind: r.Kind,
		PerSlot: sum.PerSlot, PerSlotStdErr: sum.PerSlotStdErr,
		Overall: sum.Overall, Runs: sum.Runs,
	}, nil
}

// Runner executes one scenario kind over one shard of its run range.
type Runner func(ctx context.Context, sp Spec, shard engine.Shard) (*report.Report, error)

var registry = map[string]Runner{}

// Register adds a scenario kind; duplicate kinds panic (registration is
// an init-time programming error).
func Register(kind string, r Runner) {
	if _, dup := registry[kind]; dup {
		panic(fmt.Sprintf("scenario: duplicate kind %q", kind))
	}
	registry[kind] = r
}

// Kinds lists the registered scenario kinds in sorted order.
func Kinds() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// File is the JSON config format: file-level defaults applied to every
// scenario that does not spell the corresponding field out itself (an
// explicit value — even zero — always wins over a default).
type File struct {
	Defaults struct {
		Runs    int   `json:"runs,omitempty"`
		Horizon int   `json:"horizon,omitempty"`
		Seed    int64 `json:"seed,omitempty"`
		Workers int   `json:"workers,omitempty"`
	} `json:"defaults,omitempty"`
	Scenarios []json.RawMessage `json:"scenarios"`
}

// Load parses a JSON scenario config. Unknown fields are rejected so
// config typos fail loudly instead of silently running the default.
func Load(r io.Reader) ([]Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var f File
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("scenario: parsing config: %w", err)
	}
	if len(f.Scenarios) == 0 {
		return nil, errors.New("scenario: config has no scenarios")
	}
	specs := make([]Spec, len(f.Scenarios))
	for i, raw := range f.Scenarios {
		sp := &specs[i]
		sd := json.NewDecoder(bytes.NewReader(raw))
		sd.DisallowUnknownFields()
		if err := sd.Decode(sp); err != nil {
			return nil, fmt.Errorf("scenario: parsing entry %d: %w", i, err)
		}
		// Defaults apply by key presence, not zero value: an explicit
		// "seed": 0 is a valid experiment seed and must survive.
		var present map[string]json.RawMessage
		if err := json.Unmarshal(raw, &present); err != nil {
			return nil, fmt.Errorf("scenario: parsing entry %d: %w", i, err)
		}
		if _, ok := present["runs"]; !ok {
			sp.Runs = f.Defaults.Runs
		}
		if _, ok := present["horizon"]; !ok {
			sp.Horizon = f.Defaults.Horizon
		}
		if _, ok := present["seed"]; !ok {
			sp.Seed = f.Defaults.Seed
		}
		if _, ok := present["workers"]; !ok {
			sp.Workers = f.Defaults.Workers
		}
	}
	return specs, nil
}

// LoadFile is Load over a path.
func LoadFile(path string) ([]Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// buildChain resolves Spec's mobility-model fields for the target (an
// injected Chain wins over Model).
func buildChain(model string, sp Spec) (*markov.Chain, error) {
	if sp.Chain != nil && strings.EqualFold(model, sp.Model) {
		return sp.Chain, nil
	}
	switch strings.ToLower(strings.TrimSpace(model)) {
	case "grid":
		grid, err := mobility.NewGrid(sp.GridW, sp.GridH)
		if err != nil {
			return nil, err
		}
		return grid.Walk(sp.PMove, mobility.DefaultEps)
	case "non-skewed":
		return buildSynthetic(mobility.ModelNonSkewed, sp)
	case "spatially-skewed":
		return buildSynthetic(mobility.ModelSpatiallySkewed, sp)
	case "temporally-skewed":
		return buildSynthetic(mobility.ModelTemporallySkewed, sp)
	case "both-skewed", "spatially&temporally-skewed":
		return buildSynthetic(mobility.ModelBothSkewed, sp)
	default:
		return nil, fmt.Errorf("scenario: unknown model %q", model)
	}
}

func buildSynthetic(id mobility.ModelID, sp Spec) (*markov.Chain, error) {
	if sp.ModelSeed != 0 {
		return mobility.Build(id, rng.New(sp.ModelSeed), sp.Cells)
	}
	// Mirror internal/figures: build on the canonical model stream of
	// the experiment seed so one config's figures share their models.
	return mobility.BuildDerived(id, sp.Seed, sp.Cells)
}

func init() {
	Register("single", runSingle)
	Register("multiuser", runMultiuser)
	Register("mixed", runMixed)
	Register("hetero", runHetero)
	Register("trace", runTrace)
	Register("mecbatch", runMecbatch)
}
