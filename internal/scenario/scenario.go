// Package scenario is the config-driven workload layer above the
// Monte-Carlo engine: a registry of named scenario kinds, each a function
// from a declarative Spec to an aggregated Result, plus a JSON loader so
// new experiments — larger populations, different eavesdroppers, mixed
// chaff strategies, big 2-D grids — are a config entry rather than a new
// package. cmd/experiments exposes it via the -scenario flag.
//
// Built-in kinds:
//
//   - "single": one user, one chaff strategy, basic or strategy-aware
//     (advanced) eavesdropper — the internal/sim scenario.
//   - "multiuser": a target among coexisting users, optional chaffs,
//     basic or advanced eavesdropper — the internal/multiuser scenario.
//   - "mixed": a mixed-strategy chaff population: every strategy listed
//     in Strategies contributes NumChaffs chaffs for the same user, and
//     the basic eavesdropper observes the union. The population composes
//     into one chaff.Strategy and runs through internal/sim.
//
// Mobility models are named by the paper's labels ("non-skewed",
// "spatially-skewed", "temporally-skewed", "both-skewed") or "grid" for a
// 2-D lazy-walk over a GridW×GridH cell layout at any scale.
package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strings"

	"chaffmec/internal/chaff"
	"chaffmec/internal/markov"
	"chaffmec/internal/mobility"
	"chaffmec/internal/multiuser"
	"chaffmec/internal/rng"
	"chaffmec/internal/sim"
)

// Spec declares one scenario instance. Zero-valued fields take the
// defaults documented per field; kinds ignore fields that do not apply.
type Spec struct {
	// Name labels the scenario in outputs (default: its kind).
	Name string `json:"name,omitempty"`
	// Kind selects the registered runner (see Kinds).
	Kind string `json:"kind"`

	// Model names the user's mobility model: one of the paper's synthetic
	// models ("non-skewed", "spatially-skewed", "temporally-skewed",
	// "both-skewed") or "grid" (default "non-skewed").
	Model string `json:"model,omitempty"`
	// Cells sizes the synthetic models (default 10, the paper's L).
	Cells int `json:"cells,omitempty"`
	// ModelSeed seeds the random-matrix models; 0 derives it from Seed
	// the same way internal/figures does.
	ModelSeed int64 `json:"model_seed,omitempty"`
	// GridW, GridH size the "grid" model (default 5×5); PMove is its
	// per-slot move probability (default 0.7).
	GridW int     `json:"grid_w,omitempty"`
	GridH int     `json:"grid_h,omitempty"`
	PMove float64 `json:"p_move,omitempty"`

	// Strategy is the chaff strategy name (see chaff.Names); empty means
	// unprotected where the kind allows it ("multiuser").
	Strategy string `json:"strategy,omitempty"`
	// Strategies lists the population of the "mixed" kind.
	Strategies []string `json:"strategies,omitempty"`
	// NumChaffs is the chaff budget per strategy (default 1).
	NumChaffs int `json:"num_chaffs,omitempty"`
	// Advanced upgrades the eavesdropper to the strategy-aware detector
	// of Section VI-A (requires a strategy with a deterministic Γ).
	Advanced bool `json:"advanced,omitempty"`

	// OtherUsers adds coexisting users ("multiuser" kind), following
	// OtherModel (default: the target's model).
	OtherUsers int    `json:"other_users,omitempty"`
	OtherModel string `json:"other_model,omitempty"`

	// Horizon is T (default 100); Runs the Monte-Carlo repetitions
	// (default 1000); Seed the experiment seed; Workers the parallelism
	// cap (default GOMAXPROCS).
	Horizon int   `json:"horizon,omitempty"`
	Runs    int   `json:"runs,omitempty"`
	Seed    int64 `json:"seed,omitempty"`
	Workers int   `json:"workers,omitempty"`
}

func (sp Spec) withDefaults() Spec {
	if sp.Name == "" {
		sp.Name = sp.Kind
	}
	if sp.Model == "" {
		sp.Model = "non-skewed"
	}
	if sp.Cells <= 0 {
		sp.Cells = 10
	}
	if sp.GridW <= 0 {
		sp.GridW = 5
	}
	if sp.GridH <= 0 {
		sp.GridH = 5
	}
	if sp.PMove <= 0 {
		sp.PMove = 0.7
	}
	if sp.NumChaffs <= 0 {
		sp.NumChaffs = 1
	}
	if sp.Horizon <= 0 {
		sp.Horizon = 100
	}
	if sp.OtherModel == "" {
		sp.OtherModel = sp.Model
	}
	return sp
}

// Result is a scenario's aggregated outcome.
type Result struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// PerSlot is the eavesdropper's mean per-slot tracking accuracy,
	// PerSlotStdErr its standard error, Overall its time average.
	PerSlot       []float64 `json:"per_slot"`
	PerSlotStdErr []float64 `json:"per_slot_stderr"`
	Overall       float64   `json:"overall"`
	// Runs echoes the aggregated repetition count.
	Runs int `json:"runs"`
}

// Runner executes one scenario kind.
type Runner func(sp Spec) (*Result, error)

var registry = map[string]Runner{}

// Register adds a scenario kind; duplicate kinds panic (registration is
// an init-time programming error).
func Register(kind string, r Runner) {
	if _, dup := registry[kind]; dup {
		panic(fmt.Sprintf("scenario: duplicate kind %q", kind))
	}
	registry[kind] = r
}

// Kinds lists the registered scenario kinds in sorted order.
func Kinds() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run executes one spec through its registered kind.
func Run(sp Spec) (*Result, error) {
	if sp.Kind == "" {
		return nil, errors.New("scenario: spec needs a kind")
	}
	r, ok := registry[sp.Kind]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown kind %q (known: %s)", sp.Kind, strings.Join(Kinds(), ", "))
	}
	return r(sp.withDefaults())
}

// File is the JSON config format: file-level defaults applied to every
// scenario that does not spell the corresponding field out itself (an
// explicit value — even zero — always wins over a default).
type File struct {
	Defaults struct {
		Runs    int   `json:"runs,omitempty"`
		Horizon int   `json:"horizon,omitempty"`
		Seed    int64 `json:"seed,omitempty"`
		Workers int   `json:"workers,omitempty"`
	} `json:"defaults,omitempty"`
	Scenarios []json.RawMessage `json:"scenarios"`
}

// Load parses a JSON scenario config. Unknown fields are rejected so
// config typos fail loudly instead of silently running the default.
func Load(r io.Reader) ([]Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var f File
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("scenario: parsing config: %w", err)
	}
	if len(f.Scenarios) == 0 {
		return nil, errors.New("scenario: config has no scenarios")
	}
	specs := make([]Spec, len(f.Scenarios))
	for i, raw := range f.Scenarios {
		sp := &specs[i]
		sd := json.NewDecoder(bytes.NewReader(raw))
		sd.DisallowUnknownFields()
		if err := sd.Decode(sp); err != nil {
			return nil, fmt.Errorf("scenario: parsing entry %d: %w", i, err)
		}
		// Defaults apply by key presence, not zero value: an explicit
		// "seed": 0 is a valid experiment seed and must survive.
		var present map[string]json.RawMessage
		if err := json.Unmarshal(raw, &present); err != nil {
			return nil, fmt.Errorf("scenario: parsing entry %d: %w", i, err)
		}
		if _, ok := present["runs"]; !ok {
			sp.Runs = f.Defaults.Runs
		}
		if _, ok := present["horizon"]; !ok {
			sp.Horizon = f.Defaults.Horizon
		}
		if _, ok := present["seed"]; !ok {
			sp.Seed = f.Defaults.Seed
		}
		if _, ok := present["workers"]; !ok {
			sp.Workers = f.Defaults.Workers
		}
	}
	return specs, nil
}

// LoadFile is Load over a path.
func LoadFile(path string) ([]Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// RunFile loads a JSON config and runs every scenario in order.
func RunFile(path string) ([]*Result, error) {
	specs, err := LoadFile(path)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, 0, len(specs))
	for i, sp := range specs {
		res, err := Run(sp)
		if err != nil {
			return nil, fmt.Errorf("scenario: %q (entry %d): %w", sp.Name, i, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// buildChain resolves Spec's mobility-model fields.
func buildChain(model string, sp Spec) (*markov.Chain, error) {
	switch strings.ToLower(strings.TrimSpace(model)) {
	case "grid":
		grid, err := mobility.NewGrid(sp.GridW, sp.GridH)
		if err != nil {
			return nil, err
		}
		return grid.Walk(sp.PMove, mobility.DefaultEps)
	case "non-skewed":
		return buildSynthetic(mobility.ModelNonSkewed, sp)
	case "spatially-skewed":
		return buildSynthetic(mobility.ModelSpatiallySkewed, sp)
	case "temporally-skewed":
		return buildSynthetic(mobility.ModelTemporallySkewed, sp)
	case "both-skewed", "spatially&temporally-skewed":
		return buildSynthetic(mobility.ModelBothSkewed, sp)
	default:
		return nil, fmt.Errorf("scenario: unknown model %q", model)
	}
}

func buildSynthetic(id mobility.ModelID, sp Spec) (*markov.Chain, error) {
	if sp.ModelSeed != 0 {
		return mobility.Build(id, rng.New(sp.ModelSeed), sp.Cells)
	}
	// Mirror internal/figures: build on the canonical model stream of
	// the experiment seed so one config's figures share their models.
	return mobility.BuildDerived(id, sp.Seed, sp.Cells)
}

func init() {
	Register("single", runSingle)
	Register("multiuser", runMultiuser)
	Register("mixed", runMixed)
}

// runSingle is the internal/sim scenario.
func runSingle(sp Spec) (*Result, error) {
	if sp.Strategy == "" {
		return nil, errors.New(`scenario: kind "single" needs a strategy`)
	}
	chain, err := buildChain(sp.Model, sp)
	if err != nil {
		return nil, err
	}
	strat, err := chaff.NewByName(sp.Strategy, chain)
	if err != nil {
		return nil, err
	}
	sc := sim.Scenario{
		Chain:     chain,
		Strategy:  strat,
		NumChaffs: sp.NumChaffs,
		Horizon:   sp.Horizon,
	}
	if sp.Advanced {
		gamma, err := chaff.GammaByName(sp.Strategy, chain)
		if err != nil {
			return nil, err
		}
		sc.Detector = sim.AdvancedDetector
		sc.Gamma = gamma
	}
	res, err := sim.Run(sc, sim.Options{Runs: sp.Runs, Seed: sp.Seed, Workers: sp.Workers})
	if err != nil {
		return nil, err
	}
	return &Result{
		Name: sp.Name, Kind: sp.Kind,
		PerSlot: res.PerSlot, PerSlotStdErr: res.PerSlotStdErr,
		Overall: res.Overall, Runs: res.Runs,
	}, nil
}

// runMultiuser is the internal/multiuser scenario, optionally with the
// strategy-aware advanced eavesdropper.
func runMultiuser(sp Spec) (*Result, error) {
	chain, err := buildChain(sp.Model, sp)
	if err != nil {
		return nil, err
	}
	cfg := multiuser.Config{TargetChain: chain, Horizon: sp.Horizon}
	if sp.OtherUsers > 0 {
		other := chain
		if sp.OtherModel != sp.Model {
			if other, err = buildChain(sp.OtherModel, sp); err != nil {
				return nil, err
			}
			if other.NumStates() != chain.NumStates() {
				return nil, fmt.Errorf("scenario: other model %q has %d cells, target has %d",
					sp.OtherModel, other.NumStates(), chain.NumStates())
			}
		}
		for i := 0; i < sp.OtherUsers; i++ {
			cfg.OtherChains = append(cfg.OtherChains, other)
		}
	}
	if sp.Strategy != "" {
		if cfg.Strategy, err = chaff.NewByName(sp.Strategy, chain); err != nil {
			return nil, err
		}
		cfg.NumChaffs = sp.NumChaffs
	}
	if sp.Advanced {
		if sp.Strategy == "" {
			return nil, errors.New("scenario: advanced eavesdropper needs a strategy to recognize")
		}
		gamma, err := chaff.GammaByName(sp.Strategy, chain)
		if err != nil {
			return nil, err
		}
		cfg.Gamma = gamma
	}
	res, err := multiuser.Run(cfg, multiuser.Options{Runs: sp.Runs, Seed: sp.Seed, Workers: sp.Workers})
	if err != nil {
		return nil, err
	}
	return &Result{
		Name: sp.Name, Kind: sp.Kind,
		PerSlot: res.PerSlot, PerSlotStdErr: res.PerSlotStdErr,
		Overall: res.Overall, Runs: res.Runs,
	}, nil
}

// unionStrategy composes several chaff strategies into one population:
// each member generates `per` chaffs for the same user trajectory, in
// listed order (so RNG draws match running the members back to back).
type unionStrategy struct {
	strategies []chaff.Strategy
	per        int
}

func (u *unionStrategy) Name() string { return "mixed" }

func (u *unionStrategy) GenerateChaffs(rng *rand.Rand, user markov.Trajectory, numChaffs int) ([]markov.Trajectory, error) {
	if want := u.per * len(u.strategies); numChaffs != want {
		return nil, fmt.Errorf("scenario: mixed population generates %d chaffs, asked for %d", want, numChaffs)
	}
	out := make([]markov.Trajectory, 0, numChaffs)
	for _, s := range u.strategies {
		chaffs, err := s.GenerateChaffs(rng, user, u.per)
		if err != nil {
			return nil, fmt.Errorf("scenario: %s chaffs: %w", s.Name(), err)
		}
		out = append(out, chaffs...)
	}
	return out, nil
}

// runMixed evaluates a mixed-strategy chaff population: every strategy in
// Strategies contributes NumChaffs chaffs for the same user, and the
// basic ML eavesdropper observes the union. The population composes into
// a single chaff.Strategy, so execution is plain sim.Run on the engine.
func runMixed(sp Spec) (*Result, error) {
	if len(sp.Strategies) == 0 {
		return nil, errors.New(`scenario: kind "mixed" needs strategies`)
	}
	chain, err := buildChain(sp.Model, sp)
	if err != nil {
		return nil, err
	}
	union := &unionStrategy{per: sp.NumChaffs}
	for _, name := range sp.Strategies {
		s, err := chaff.NewByName(name, chain)
		if err != nil {
			return nil, err
		}
		union.strategies = append(union.strategies, s)
	}
	res, err := sim.Run(sim.Scenario{
		Chain:     chain,
		Strategy:  union,
		NumChaffs: sp.NumChaffs * len(union.strategies),
		Horizon:   sp.Horizon,
	}, sim.Options{Runs: sp.Runs, Seed: sp.Seed, Workers: sp.Workers})
	if err != nil {
		return nil, err
	}
	return &Result{
		Name: sp.Name, Kind: sp.Kind,
		PerSlot: res.PerSlot, PerSlotStdErr: res.PerSlotStdErr,
		Overall: res.Overall, Runs: res.Runs,
	}, nil
}
