package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestKindsRegistered(t *testing.T) {
	want := []string{"hetero", "mecbatch", "mixed", "multiuser", "single", "trace"}
	if got := Kinds(); !reflect.DeepEqual(got, want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Spec{}); err == nil {
		t.Fatal("empty kind accepted")
	}
	if _, err := Run(Spec{Kind: "nope"}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := Run(Spec{Kind: "single", Runs: 1, Horizon: 5}); err == nil {
		t.Fatal("single without strategy accepted")
	}
	if _, err := Run(Spec{Kind: "mixed", Runs: 1, Horizon: 5}); err == nil {
		t.Fatal("mixed without strategies accepted")
	}
	if _, err := Run(Spec{Kind: "single", Strategy: "MO", Model: "nope", Runs: 1, Horizon: 5}); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := Run(Spec{Kind: "multiuser", Advanced: true, Runs: 1, Horizon: 5}); err == nil {
		t.Fatal("advanced eavesdropper without strategy accepted")
	}
}

func TestSingleMatchesPaperBehavior(t *testing.T) {
	// MO against the basic eavesdropper decays toward zero (Fig. 5).
	res, err := Run(Spec{Kind: "single", Strategy: "MO", Runs: 80, Horizon: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 80 || len(res.PerSlot) != 60 {
		t.Fatalf("shape: %d runs, %d slots", res.Runs, len(res.PerSlot))
	}
	if res.PerSlot[59] > 0.05 {
		t.Fatalf("MO tail accuracy %v, want near zero", res.PerSlot[59])
	}
	// The advanced eavesdropper defeats deterministic MO (Section VI-A).
	adv, err := Run(Spec{Kind: "single", Strategy: "MO", Advanced: true, Runs: 40, Horizon: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if adv.Overall < 0.99 {
		t.Fatalf("advanced vs MO overall %v, want ≈ 1", adv.Overall)
	}
}

func TestGridModelScales(t *testing.T) {
	res, err := Run(Spec{Kind: "single", Model: "grid", GridW: 12, GridH: 12,
		Strategy: "IM", Runs: 20, Horizon: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overall <= 0 || res.Overall > 1 {
		t.Fatalf("overall %v out of range", res.Overall)
	}
}

func TestMixedPopulationCoversUser(t *testing.T) {
	single, err := Run(Spec{Kind: "single", Strategy: "IM", Runs: 100, Horizon: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := Run(Spec{Kind: "mixed", Strategies: []string{"IM", "MO", "RMO"},
		Runs: 100, Horizon: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(mixed.PerSlot) != 40 || mixed.Runs != 100 {
		t.Fatalf("shape: %d slots, %d runs", len(mixed.PerSlot), mixed.Runs)
	}
	// Three cooperating strategies must not track worse than a lone IM
	// chaff: the MO member alone drives accuracy down.
	if mixed.Overall >= single.Overall {
		t.Fatalf("mixed population overall %v not below single-IM %v", mixed.Overall, single.Overall)
	}
}

func TestMultiuserAdvancedFromConfig(t *testing.T) {
	res, err := Run(Spec{Kind: "multiuser", Model: "spatially-skewed", OtherUsers: 3,
		Strategy: "MO", Advanced: true, Runs: 60, Horizon: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overall <= 0 || res.Overall > 1 {
		t.Fatalf("overall %v out of range", res.Overall)
	}
}

func TestLoadAppliesDefaultsAndRejectsTypos(t *testing.T) {
	specs, err := Load(strings.NewReader(`{
		"defaults": {"runs": 50, "horizon": 25, "seed": 9, "workers": 2},
		"scenarios": [
			{"kind": "single", "strategy": "MO"},
			{"kind": "multiuser", "other_users": 2, "runs": 7}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("%d specs", len(specs))
	}
	if specs[0].Runs != 50 || specs[0].Horizon != 25 || specs[0].Seed != 9 || specs[0].Workers != 2 {
		t.Fatalf("defaults not applied: %+v", specs[0])
	}
	if specs[1].Runs != 7 {
		t.Fatalf("explicit runs overridden: %+v", specs[1])
	}
	// An explicit zero must win over a non-zero file default: seed 0 is a
	// valid experiment seed.
	zero, err := Load(strings.NewReader(`{
		"defaults": {"seed": 6, "workers": 2},
		"scenarios": [{"kind": "single", "strategy": "MO", "seed": 0}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if zero[0].Seed != 0 {
		t.Fatalf("explicit seed 0 overridden by default: %+v", zero[0])
	}
	if zero[0].Workers != 2 {
		t.Fatalf("absent workers did not take the default: %+v", zero[0])
	}
	if _, err := Load(strings.NewReader(`{"scenarios":[{"kind":"single","strattegy":"MO"}]}`)); err == nil {
		t.Fatal("config typo accepted")
	}
	if _, err := Load(strings.NewReader(`{"scenarios":[]}`)); err == nil {
		t.Fatal("empty scenario list accepted")
	}
}

func TestRunFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scenarios.json")
	cfg := `{
		"defaults": {"runs": 30, "horizon": 20, "seed": 4},
		"scenarios": [
			{"name": "mu-adv", "kind": "multiuser", "model": "spatially-skewed",
			 "other_users": 2, "strategy": "MO", "advanced": true},
			{"name": "mixed-pop", "kind": "mixed", "strategies": ["IM", "MO"]}
		]
	}`
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	results, err := RunFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	if results[0].Name != "mu-adv" || results[1].Name != "mixed-pop" {
		t.Fatalf("names: %q, %q", results[0].Name, results[1].Name)
	}
	for _, r := range results {
		if len(r.PerSlot) != 20 || r.Runs != 30 {
			t.Fatalf("%s: shape %d slots, %d runs", r.Name, len(r.PerSlot), r.Runs)
		}
	}
}
