package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"chaffmec/internal/chaff"
	"chaffmec/internal/detect"
	"chaffmec/internal/engine"
	"chaffmec/internal/figures"
	"chaffmec/internal/markov"
	"chaffmec/internal/report"
	"chaffmec/internal/rng"
	"chaffmec/internal/store"
	"chaffmec/internal/tune"
)

// traceLabCache shares built TraceLabs across the rounds and in-process
// shards of "trace" jobs: a lab depends only on its generation
// parameters (TraceConfig is comparable), and building one — trace
// generation, tower field, regularisation, quantisation, chain fitting —
// dwarfs the per-round evaluation, so an adaptive trace job must not pay
// it once per round. Labs are immutable after construction (the chain's
// lazy alias tables are internally synchronized), so sharing is safe; a
// small LRU bounds the footprint when configs churn. Builds run outside
// the cache lock behind a per-entry Once: concurrent jobs wanting the
// SAME lab block on one build, while lookups of other configs proceed.
type traceLabEntry struct {
	once sync.Once
	lab  *figures.TraceLab
	err  error
}

var traceLabCache = struct {
	sync.Mutex
	labs   map[figures.TraceConfig]*traceLabEntry
	order  []figures.TraceConfig // oldest first
	builds int                   // observability for tests
}{labs: map[figures.TraceConfig]*traceLabEntry{}}

const traceLabCacheCap = 4

func sharedTraceLab(cfg figures.TraceConfig) (*figures.TraceLab, error) {
	c := &traceLabCache
	c.Lock()
	e, ok := c.labs[cfg]
	if ok {
		for i, k := range c.order { // refresh LRU position
			if k == cfg {
				c.order = append(append(c.order[:i:i], c.order[i+1:]...), cfg)
				break
			}
		}
	} else {
		e = &traceLabEntry{}
		c.labs[cfg] = e
		c.order = append(c.order, cfg)
		if len(c.order) > traceLabCacheCap {
			// An evicted entry may still be mid-build; its waiters hold
			// the pointer and finish unaffected.
			delete(c.labs, c.order[0])
			c.order = c.order[1:]
		}
	}
	c.Unlock()
	e.once.Do(func() {
		var built bool
		e.lab, built, e.err = loadOrBuildTraceLab(cfg)
		if built {
			c.Lock()
			c.builds++
			c.Unlock()
		}
	})
	if e.err != nil {
		// Do not cache failures: drop the entry so a later call retries.
		c.Lock()
		if c.labs[cfg] == e {
			delete(c.labs, cfg)
			for i, k := range c.order {
				if k == cfg {
					c.order = append(c.order[:i:i], c.order[i+1:]...)
					break
				}
			}
		}
		c.Unlock()
	}
	return e.lab, e.err
}

// buildTraceLab is the cold-build path, a seam the cache tests stub.
var buildTraceLab = figures.BuildTraceLab

// storeKindTraceLab namespaces persisted labs in the artifact store.
const storeKindTraceLab = "tracelab"

// traceLabStoreKey is the lab's content address: the generation config
// and the rng stream version it was generated under (a stream bump
// changes every synthetic trace, so old artifacts must not hit).
func traceLabStoreKey(cfg figures.TraceConfig) string {
	spec, _ := json.Marshal(cfg)
	return store.Key(storeKindTraceLab, string(spec), rng.StreamVersion)
}

// loadOrBuildTraceLab consults the artifact store before paying for a
// build: a warm store turns a fresh process's first trace Job from a
// full generate/fit pipeline into one decode. Built reports whether the
// pipeline actually ran (store hits don't count as builds). Store
// failures never fail the job — a blob that won't decode is evicted and
// rebuilt, and persisting the fresh build is best-effort.
func loadOrBuildTraceLab(cfg figures.TraceConfig) (lab *figures.TraceLab, built bool, err error) {
	st := store.Default()
	var key string
	if st != nil {
		key = traceLabStoreKey(cfg)
		if blob, ok, err := st.Get(storeKindTraceLab, key); err == nil && ok {
			if lab, err := figures.DecodeTraceLab(bytes.NewReader(blob)); err == nil {
				return lab, false, nil
			}
			st.Delete(storeKindTraceLab, key)
		}
	}
	lab, err = buildTraceLab(cfg)
	if err != nil {
		return nil, false, err
	}
	if st != nil {
		var buf bytes.Buffer
		if err := lab.Encode(&buf); err == nil {
			st.Put(storeKindTraceLab, key, buf.Bytes())
		}
	}
	return lab, true, nil
}

// ResetTraceLabCache empties the shared lab cache. Tests and benches
// use it to force the next trace job through loadOrBuildTraceLab.
func ResetTraceLabCache() {
	c := &traceLabCache
	c.Lock()
	c.labs = map[figures.TraceConfig]*traceLabEntry{}
	c.order = nil
	c.Unlock()
}

// TraceLabBuilds counts the labs built from scratch since process start
// — store hits and cache hits don't move it, so a warm-store run is
// provably build-free (the wire bench's assertion).
func TraceLabBuilds() int {
	c := &traceLabCache
	c.Lock()
	defer c.Unlock()
	return c.builds
}

// traceWorker is a trace run's per-worker scratch: the reusable scoring
// workspace, the scalar path's trajectory slice (rebuilt, not
// reallocated, per run) and the batch path's reused chaff buffers.
type traceWorker struct {
	ws        *detect.Workspace
	trs       []markov.Trajectory
	chaffBufs []markov.Trajectory
}

// runTraceBlock is the trace batch kernel: it packs the fixed fleet plus
// each run's chaff stream (generated into the worker's reused buffers)
// into the worker's scoring block, sweeps the whole chunk once through
// the block scorer, and copies the protected user's tracking series out
// of the arena — one backing allocation per block.
//
//chaffmec:hotpath
func runTraceBlock(lab *figures.TraceLab, strat chaff.Strategy, scorer detect.BlockScorer, user int, w *traceWorker, rngs []*rand.Rand, out [][]float64) error {
	B, T := len(rngs), lab.Horizon
	blk := w.ws.Block(B, len(lab.Trajectories)+len(w.chaffBufs), T)
	for r := range rngs {
		for u, tr := range lab.Trajectories {
			if err := blk.SetTrajectory(r, u, tr); err != nil {
				return err
			}
		}
		if strat != nil {
			if err := chaff.GenerateInto(strat, rngs[r], lab.Trajectories[user], w.chaffBufs); err != nil {
				return fmt.Errorf("scenario: trace chaffs: %w", err)
			}
			for i, ch := range w.chaffBufs {
				if err := blk.SetTrajectory(r, len(lab.Trajectories)+i, ch); err != nil {
					return err
				}
			}
		}
	}
	if err := scorer.ScoreBlock(blk, user); err != nil {
		return err
	}
	//lint:ignore hotpath by design: results must outlive the arena's reuse by the next chunk, so each block pays exactly one backing allocation
	backing := make([]float64, B*T)
	for r := range out {
		series := backing[r*T : (r+1)*T]
		copy(series, blk.Tracking(r))
		out[r] = series
	}
	return nil
}

// runTrace is the trace-driven population kind (Section VII-B): a
// TraceLab fleet — synthetic taxi traces regularised, inactivity
// filtered and quantised into Voronoi cells — forms the fixed observed
// population, and each Monte-Carlo run draws a fresh chaff stream (from
// the run's private engine stream) protecting the TraceUser-th most
// tracked user. The eavesdropper (basic ML, or strategy-aware when
// Advanced) observes all fleet trajectories plus the chaffs; the
// reported series is the protected user's per-slot tracking accuracy
// averaged over the chaff streams. With no Strategy the runs are
// chaff-free (and therefore identical — a deterministic baseline).
//
// Spec fields used: Nodes (fleet size, default 174), Horizon (the
// observation window in one-minute slots), TraceUser (tracked-ness
// rank), Strategy/NumChaffs/Advanced, ModelSeed (fleet generation seed;
// 0 uses Seed).
func runTrace(ctx context.Context, sp Spec, shard engine.Shard) (*report.Report, error) {
	if sp.Advanced && sp.Strategy == "" {
		return nil, errors.New("scenario: advanced eavesdropper needs a strategy to recognize")
	}
	if sp.TraceUser < 0 {
		return nil, fmt.Errorf("scenario: trace_user %d must be >= 0", sp.TraceUser)
	}
	labSeed := sp.ModelSeed
	if labSeed == 0 {
		labSeed = sp.Seed
	}
	lab, err := sharedTraceLab(figures.TraceConfig{
		Seed:    labSeed,
		Nodes:   sp.Nodes,
		Minutes: sp.Horizon,
	})
	if err != nil {
		return nil, err
	}
	top, _, err := lab.TopUsers(sp.TraceUser + 1)
	if err != nil {
		return nil, fmt.Errorf("scenario: selecting trace user %d: %w", sp.TraceUser, err)
	}
	user := top[sp.TraceUser]

	var strat chaff.Strategy
	numChaffs := 0
	if sp.Strategy != "" {
		if strat, err = chaff.NewByName(sp.Strategy, lab.Chain); err != nil {
			return nil, err
		}
		numChaffs = sp.NumChaffs
	}
	var det detect.PrefixDetector = detect.NewMLDetector(lab.Chain)
	if sp.Advanced {
		gamma, err := specGamma(sp, lab.Chain)
		if err != nil {
			return nil, err
		}
		adv, err := detect.NewAdvancedDetector(lab.Chain, gamma)
		if err != nil {
			return nil, err
		}
		det = adv
	}

	o := sp.options(shard).Normalized()
	start, _ := o.Range()
	track := engine.NewSeriesStatsAt(lab.Horizon, start)

	cfg := engine.Config[*traceWorker, []float64]{
		NewWorker: func(int) (*traceWorker, error) {
			w := &traceWorker{
				ws:        detect.GetWorkspace(),
				trs:       make([]markov.Trajectory, 0, len(lab.Trajectories)+numChaffs),
				chaffBufs: make([]markov.Trajectory, numChaffs),
			}
			for i := range w.chaffBufs {
				w.chaffBufs[i] = make(markov.Trajectory, lab.Horizon)
			}
			return w, nil
		},
		FreeWorker: func(w *traceWorker) { w.ws.Release() },
		Accumulate: func(run int, series []float64) error {
			return track.Add(series)
		},
	}
	if scorer, ok := det.(detect.BlockScorer); ok {
		// Batch path: the fixed fleet plus each run's chaff stream are
		// packed into the worker's scoring block and swept once per chunk.
		// Only chaff generation draws from the run streams, exactly as the
		// scalar path does, so results are bit-identical to it. The chunk
		// width comes from the block-geometry calibration for this kernel
		// shape (cached per host; chunking never changes results).
		cfg.RunBlock = func(w *traceWorker, start int, rngs []*rand.Rand, out [][]float64) error {
			return runTraceBlock(lab, strat, scorer, user, w, rngs, out)
		}
		cfg.BlockSize = tune.BlockSize(lab.Chain, len(lab.Trajectories)+numChaffs, lab.Horizon)
	} else {
		cfg.Run = func(w *traceWorker, run int, rng *rand.Rand) ([]float64, error) {
			w.trs = append(w.trs[:0], lab.Trajectories...)
			if strat != nil {
				chaffs, err := strat.GenerateChaffs(rng, lab.Trajectories[user], numChaffs)
				if err != nil {
					return nil, fmt.Errorf("scenario: trace chaffs: %w", err)
				}
				w.trs = append(w.trs, chaffs...)
			}
			dets, err := det.PrefixDetectionsWith(w.ws, w.trs)
			if err != nil {
				return nil, err
			}
			return detect.TrackingAccuracySeries(dets, w.trs, user)
		}
	}
	err = engine.Run(ctx, o, cfg)
	if err != nil {
		return nil, err
	}
	rep := sp.envelope(shard)
	rep.Horizon = lab.Horizon
	rep.Series = map[string]engine.SeriesSnapshot{
		report.SeriesTracking: track.Snapshot(),
	}
	return rep, nil
}
