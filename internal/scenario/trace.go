package scenario

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"chaffmec/internal/chaff"
	"chaffmec/internal/detect"
	"chaffmec/internal/engine"
	"chaffmec/internal/figures"
	"chaffmec/internal/markov"
	"chaffmec/internal/report"
)

// runTrace is the trace-driven population kind (Section VII-B): a
// TraceLab fleet — synthetic taxi traces regularised, inactivity
// filtered and quantised into Voronoi cells — forms the fixed observed
// population, and each Monte-Carlo run draws a fresh chaff stream (from
// the run's private engine stream) protecting the TraceUser-th most
// tracked user. The eavesdropper (basic ML, or strategy-aware when
// Advanced) observes all fleet trajectories plus the chaffs; the
// reported series is the protected user's per-slot tracking accuracy
// averaged over the chaff streams. With no Strategy the runs are
// chaff-free (and therefore identical — a deterministic baseline).
//
// Spec fields used: Nodes (fleet size, default 174), Horizon (the
// observation window in one-minute slots), TraceUser (tracked-ness
// rank), Strategy/NumChaffs/Advanced, ModelSeed (fleet generation seed;
// 0 uses Seed).
func runTrace(ctx context.Context, sp Spec, shard engine.Shard) (*report.Report, error) {
	if sp.Advanced && sp.Strategy == "" {
		return nil, errors.New("scenario: advanced eavesdropper needs a strategy to recognize")
	}
	if sp.TraceUser < 0 {
		return nil, fmt.Errorf("scenario: trace_user %d must be >= 0", sp.TraceUser)
	}
	labSeed := sp.ModelSeed
	if labSeed == 0 {
		labSeed = sp.Seed
	}
	lab, err := figures.BuildTraceLab(figures.TraceConfig{
		Seed:    labSeed,
		Nodes:   sp.Nodes,
		Minutes: sp.Horizon,
	})
	if err != nil {
		return nil, err
	}
	top, _, err := lab.TopUsers(sp.TraceUser + 1)
	if err != nil {
		return nil, fmt.Errorf("scenario: selecting trace user %d: %w", sp.TraceUser, err)
	}
	user := top[sp.TraceUser]

	var strat chaff.Strategy
	numChaffs := 0
	if sp.Strategy != "" {
		if strat, err = chaff.NewByName(sp.Strategy, lab.Chain); err != nil {
			return nil, err
		}
		numChaffs = sp.NumChaffs
	}
	var det detect.PrefixDetector = detect.NewMLDetector(lab.Chain)
	if sp.Advanced {
		gamma, err := specGamma(sp, lab.Chain)
		if err != nil {
			return nil, err
		}
		adv, err := detect.NewAdvancedDetector(lab.Chain, gamma)
		if err != nil {
			return nil, err
		}
		det = adv
	}

	o := sp.options(shard).Normalized()
	start, _ := o.Range()
	track := engine.NewSeriesStatsAt(lab.Horizon, start)

	type traceWorker struct {
		ws  *detect.Workspace
		trs []markov.Trajectory
	}
	err = engine.Run(ctx, o, engine.Config[*traceWorker, []float64]{
		NewWorker: func(int) (*traceWorker, error) {
			return &traceWorker{
				ws:  detect.NewWorkspace(),
				trs: make([]markov.Trajectory, 0, len(lab.Trajectories)+numChaffs),
			}, nil
		},
		Run: func(w *traceWorker, run int, rng *rand.Rand) ([]float64, error) {
			w.trs = append(w.trs[:0], lab.Trajectories...)
			if strat != nil {
				chaffs, err := strat.GenerateChaffs(rng, lab.Trajectories[user], numChaffs)
				if err != nil {
					return nil, fmt.Errorf("scenario: trace chaffs: %w", err)
				}
				w.trs = append(w.trs, chaffs...)
			}
			dets, err := det.PrefixDetectionsWith(w.ws, w.trs)
			if err != nil {
				return nil, err
			}
			return detect.TrackingAccuracySeries(dets, w.trs, user)
		},
		Accumulate: func(run int, series []float64) error {
			return track.Add(series)
		},
	})
	if err != nil {
		return nil, err
	}
	rep := sp.envelope(shard)
	rep.Horizon = lab.Horizon
	rep.Series = map[string]engine.SeriesSnapshot{
		report.SeriesTracking: track.Snapshot(),
	}
	return rep, nil
}
