package scenario

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"chaffmec/internal/figures"
	"chaffmec/internal/store"
)

// stubLabBuilder swaps the cold-build seam for a counting stub and
// resets the shared cache around the test — the LRU tests must not pay
// for (or be warmed by) real trace pipelines.
func stubLabBuilder(t *testing.T, build func(figures.TraceConfig) (*figures.TraceLab, error)) *atomic.Int64 {
	t.Helper()
	var calls atomic.Int64
	orig := buildTraceLab
	buildTraceLab = func(cfg figures.TraceConfig) (*figures.TraceLab, error) {
		calls.Add(1)
		return build(cfg)
	}
	ResetTraceLabCache()
	t.Cleanup(func() {
		buildTraceLab = orig
		ResetTraceLabCache()
	})
	return &calls
}

func labCfg(seed int64) figures.TraceConfig {
	return figures.TraceConfig{Seed: seed, Nodes: 10, Minutes: 5}
}

func TestSharedTraceLabCachesAndEvictsLRU(t *testing.T) {
	calls := stubLabBuilder(t, func(cfg figures.TraceConfig) (*figures.TraceLab, error) {
		return &figures.TraceLab{Horizon: int(cfg.Seed)}, nil
	})

	// Fill the cache to capacity; each distinct config builds once.
	for seed := int64(1); seed <= traceLabCacheCap; seed++ {
		for i := 0; i < 2; i++ {
			lab, err := sharedTraceLab(labCfg(seed))
			if err != nil {
				t.Fatal(err)
			}
			if lab.Horizon != int(seed) {
				t.Fatalf("seed %d got lab %d", seed, lab.Horizon)
			}
		}
	}
	if got := calls.Load(); got != traceLabCacheCap {
		t.Fatalf("%d builds for %d configs", got, traceLabCacheCap)
	}

	// Touch config 1 so config 2 is now the least recently used, then
	// insert a new config: 2 must be evicted, 1 retained.
	if _, err := sharedTraceLab(labCfg(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := sharedTraceLab(labCfg(traceLabCacheCap + 1)); err != nil {
		t.Fatal(err)
	}
	before := calls.Load()
	if _, err := sharedTraceLab(labCfg(1)); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != before {
		t.Fatal("recently used config was evicted")
	}
	if _, err := sharedTraceLab(labCfg(2)); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != before+1 {
		t.Fatal("least recently used config was not evicted")
	}
}

func TestSharedTraceLabSingleFlight(t *testing.T) {
	release := make(chan struct{})
	calls := stubLabBuilder(t, func(cfg figures.TraceConfig) (*figures.TraceLab, error) {
		<-release // hold every concurrent caller at the build
		return &figures.TraceLab{Horizon: 7}, nil
	})

	const waiters = 16
	var wg sync.WaitGroup
	labs := make([]*figures.TraceLab, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lab, err := sharedTraceLab(labCfg(1))
			if err != nil {
				t.Error(err)
				return
			}
			labs[i] = lab
		}(i)
	}
	close(release)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("%d builds for %d concurrent callers of one config", got, waiters)
	}
	for i := 1; i < waiters; i++ {
		if labs[i] != labs[0] {
			t.Fatal("concurrent callers received different lab instances")
		}
	}
}

func TestSharedTraceLabDoesNotCacheErrors(t *testing.T) {
	fail := true
	boom := errors.New("boom")
	calls := stubLabBuilder(t, func(cfg figures.TraceConfig) (*figures.TraceLab, error) {
		if fail {
			return nil, boom
		}
		return &figures.TraceLab{Horizon: 9}, nil
	})

	if _, err := sharedTraceLab(labCfg(1)); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failure must not be cached: the next call retries the build
	// and succeeds.
	fail = false
	lab, err := sharedTraceLab(labCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if lab.Horizon != 9 {
		t.Fatalf("got lab %d", lab.Horizon)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("%d builds, want a retry after the failure", got)
	}
	// And the success IS cached.
	if _, err := sharedTraceLab(labCfg(1)); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("%d builds, want the success cached", got)
	}
}

// TestTraceLabStoreWarmStart is the persistence acceptance property at
// the unit level: with a warm artifact store, a fresh cache (a fresh
// process) loads the lab from disk and never runs the build pipeline;
// a corrupt artifact falls back to a rebuild.
func TestTraceLabStoreWarmStart(t *testing.T) {
	st, err := store.Open(t.TempDir() + "/artifacts")
	if err != nil {
		t.Fatal(err)
	}
	store.SetDefault(st)
	t.Cleanup(func() { store.SetDefault(nil) })

	// A real (reduced) lab: the store round-trips the encoded artifact.
	cfg := figures.TraceConfig{
		Seed: 6, Nodes: 40, Minutes: 20,
		TowerClusters: 3, TowersPerCluster: 10, BackgroundTowers: 40,
	}
	ResetTraceLabCache()
	t.Cleanup(ResetTraceLabCache)
	cold, err := sharedTraceLab(cfg)
	if err != nil {
		t.Fatal(err)
	}
	coldBuilds := TraceLabBuilds()

	ResetTraceLabCache() // simulate a fresh process
	warm, err := sharedTraceLab(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if TraceLabBuilds() != coldBuilds {
		t.Fatal("warm-store load ran the build pipeline")
	}
	if warm.Horizon != cold.Horizon || len(warm.Trajectories) != len(cold.Trajectories) {
		t.Fatal("stored lab differs from built lab")
	}

	// Corrupt the artifact: the loader must evict it and rebuild.
	key := traceLabStoreKey(cfg)
	if err := st.Put(storeKindTraceLab, key, []byte("corrupt")); err != nil {
		t.Fatal(err)
	}
	ResetTraceLabCache()
	if _, err := sharedTraceLab(cfg); err != nil {
		t.Fatal(err)
	}
	if TraceLabBuilds() != coldBuilds+1 {
		t.Fatal("corrupt artifact did not trigger a rebuild")
	}
	// ...and the rebuild re-persisted a good artifact.
	blob, ok, err := st.Get(storeKindTraceLab, key)
	if err != nil || !ok {
		t.Fatalf("artifact missing after rebuild: ok=%v err=%v", ok, err)
	}
	if string(blob) == "corrupt" {
		t.Fatal("corrupt artifact still in store")
	}
}
