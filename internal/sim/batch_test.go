package sim

import (
	"context"
	"math/rand"
	"testing"

	"chaffmec/internal/chaff"
	"chaffmec/internal/detect"
	"chaffmec/internal/engine"
	"chaffmec/internal/mobility"
	"chaffmec/internal/rng"
)

// runScalar executes the scenario through the engine on the SCALAR
// per-run path (runOnce), bypassing Run's batch dispatch — the reference
// the batch path must reproduce bit for bit.
func runScalar(t *testing.T, sc Scenario, opts engine.Options) *Result {
	t.Helper()
	det, err := sc.newDetector()
	if err != nil {
		t.Fatal(err)
	}
	o := opts.Normalized()
	start, _ := o.Range()
	track := engine.NewSeriesStatsAt(sc.Horizon, start)
	detection := engine.NewSeriesStatsAt(sc.Horizon, start)
	var cts []float64
	err = engine.Run(context.Background(), o, engine.Config[*simWorker, runResult]{
		NewWorker: func(int) (*simWorker, error) { return sc.newWorker(), nil },
		Run: func(w *simWorker, run int, rng *rand.Rand) (runResult, error) {
			return sc.runOnce(w, det, rng)
		},
		Accumulate: func(run int, r runResult) error {
			if err := track.Add(r.track); err != nil {
				return err
			}
			if err := detection.Add(r.det); err != nil {
				return err
			}
			cts = append(cts, r.ct...)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return &Result{
		PerSlot:   track.Mean(),
		Detection: detection.Mean(),
		Runs:      track.N(),
		CtSamples: cts,
	}
}

// TestBatchMatchesScalar is the harness-level differential test: Run
// (batch dispatch through SampleBatch + ScoreBlock) must reproduce the
// scalar runOnce pipeline bit for bit — same seeds, same streams, same
// accumulation — across strategies, detectors and the c_t collector.
func TestBatchMatchesScalar(t *testing.T) {
	c := modelChain(t, mobility.ModelSpatiallySkewed)
	mo := chaff.NewMO(c)
	cases := []struct {
		name string
		sc   Scenario
	}{
		{"IM-basic", Scenario{Chain: c, Strategy: chaff.NewIM(c), NumChaffs: 3, Horizon: 25}},
		{"MO-basic-ct", Scenario{Chain: c, Strategy: mo, NumChaffs: 1, Horizon: 25, CollectCt: true}},
		{"ML-basic", Scenario{Chain: c, Strategy: chaff.NewML(c), NumChaffs: 2, Horizon: 25}},
		{"MO-advanced", Scenario{Chain: c, Strategy: mo, NumChaffs: 1, Horizon: 25,
			Detector: AdvancedDetector, Gamma: detect.GammaFunc(mo.Gamma)}},
		{"OO-fallback", Scenario{Chain: c, Strategy: chaff.NewOO(c), NumChaffs: 1, Horizon: 15}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := engine.Options{Runs: 60, Seed: 17, Workers: 4}
			want := runScalar(t, tc.sc, opts)
			got, err := Run(context.Background(), tc.sc, opts)
			if err != nil {
				t.Fatal(err)
			}
			if got.Runs != want.Runs {
				t.Fatalf("runs: batch %d, scalar %d", got.Runs, want.Runs)
			}
			for i := range want.PerSlot {
				if got.PerSlot[i] != want.PerSlot[i] {
					t.Fatalf("slot %d tracking: batch %v, scalar %v", i, got.PerSlot[i], want.PerSlot[i])
				}
				if got.Detection[i] != want.Detection[i] {
					t.Fatalf("slot %d detection: batch %v, scalar %v", i, got.Detection[i], want.Detection[i])
				}
			}
			if len(got.CtSamples) != len(want.CtSamples) {
				t.Fatalf("ct samples: batch %d, scalar %d", len(got.CtSamples), len(want.CtSamples))
			}
			for i := range want.CtSamples {
				if got.CtSamples[i] != want.CtSamples[i] {
					t.Fatalf("ct sample %d: batch %v, scalar %v", i, got.CtSamples[i], want.CtSamples[i])
				}
			}
		})
	}
}

// TestRunBlockAllocs pins the warm batch hot path: one engine chunk of B
// runs costs O(1) allocations (the per-block result backing), not O(B).
func TestRunBlockAllocs(t *testing.T) {
	c := modelChain(t, mobility.ModelNonSkewed)
	sc := Scenario{Chain: c, Strategy: chaff.NewML(c), NumChaffs: 2, Horizon: 50}
	det, err := sc.newDetector()
	if err != nil {
		t.Fatal(err)
	}
	scorer := det.(detect.BlockScorer)
	const B = 64
	w := sc.newWorker()
	rngs := make([]*rand.Rand, B)
	srcs := make([]rng.Source, B)
	for i := range rngs {
		rngs[i] = rand.New(&srcs[i])
	}
	out := make([]runResult, B)
	reseed := func() {
		for i := range srcs {
			srcs[i].Reseed(5, i)
		}
	}
	reseed()
	if err := sc.runBlock(w, scorer, rngs, out); err != nil { // warm all caches
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		reseed()
		if err := sc.runBlock(w, scorer, rngs, out); err != nil {
			t.Fatal(err)
		}
	})
	// One backing allocation for the per-run series (plus its slice
	// header bookkeeping at most): amortized per run this is ~0.
	if allocs > 3 {
		t.Fatalf("warm runBlock allocates %v per %d-run block, want <= 3", allocs, B)
	}
	if perRun := allocs / B; perRun > 0.1 {
		t.Fatalf("warm batch path allocates %v per run, want ~0", perRun)
	}
}
