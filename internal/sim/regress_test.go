package sim

import (
	"math"
	"testing"

	"chaffmec/internal/chaff"
	"chaffmec/internal/mobility"
)

// The values below were produced by the pre-engine harness (hand-rolled
// worker pool, per-run detector construction) on the same scenarios, so
// this test proves the engine refactor changed the execution architecture
// without changing a single result. sim's per-run seed derivation was
// already engine.MixSeed's algorithm; only the aggregation order moved
// (worker-partial sums → run-order streaming), hence the tiny tolerance
// for floating-point reassociation.
const pinTol = 1e-12

func assertSeries(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", name, len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > pinTol {
			t.Fatalf("%s[%d] = %v, want %v", name, i, got[i], want[i])
		}
	}
}

func TestRunMatchesPreRefactorValues(t *testing.T) {
	c := modelChain(t, mobility.ModelSpatiallySkewed)
	mo := chaff.NewMO(c)
	cases := []struct {
		name                      string
		sc                        Scenario
		perSlot, stderr, detected []float64
		overall                   float64
	}{
		{
			name:    "MO-basic",
			sc:      Scenario{Chain: c, Strategy: mo, NumChaffs: 2, Horizon: 8},
			perSlot: []float64{0.15625, 0.0625, 0.25, 0.125, 0, 0, 0, 0},
			stderr: []float64{0.06521328221627366, 0.04347552147751577, 0.0777713771047819,
				0.05939887041393643, 0, 0, 0, 0},
			detected: []float64{0.05208333333333333, 0.020833333333333332, 0.010416666666666666,
				0, 0, 0, 0, 0},
			overall: 0.07421875,
		},
		{
			name:    "IM-basic",
			sc:      Scenario{Chain: c, Strategy: chaff.NewIM(c), NumChaffs: 3, Horizon: 8},
			perSlot: []float64{0.15625, 0.375, 0.34375, 0.3125, 0.4375, 0.34375, 0.21875, 0.3125},
			stderr: []float64{0.06521328221627366, 0.08695104295503155, 0.08530513305661303,
				0.08324928557283298, 0.08909830562090465, 0.08530513305661303,
				0.07424858801742054, 0.08324928557283298},
			detected: []float64{0.08854166666666666, 0.1875, 0.1875, 0.21875, 0.25, 0.3125,
				0.15625, 0.21875},
			overall: 0.3125,
		},
		{
			name: "MO-advanced",
			sc: Scenario{Chain: c, Strategy: mo, NumChaffs: 1, Horizon: 8,
				Detector: AdvancedDetector, Gamma: mo.Gamma},
			perSlot:  []float64{1, 1, 1, 1, 1, 1, 1, 1},
			stderr:   []float64{0, 0, 0, 0, 0, 0, 0, 0},
			detected: []float64{1, 1, 1, 1, 1, 1, 1, 1},
			overall:  1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(tc.sc, Options{Runs: 32, Seed: 12345, Workers: 3})
			if err != nil {
				t.Fatal(err)
			}
			assertSeries(t, "PerSlot", res.PerSlot, tc.perSlot)
			assertSeries(t, "PerSlotStdErr", res.PerSlotStdErr, tc.stderr)
			assertSeries(t, "Detection", res.Detection, tc.detected)
			if math.Abs(res.Overall-tc.overall) > pinTol {
				t.Fatalf("Overall = %v, want %v", res.Overall, tc.overall)
			}
			if res.Runs != 32 {
				t.Fatalf("Runs = %d, want 32", res.Runs)
			}
		})
	}
}
