package sim

import (
	"context"
	"math"
	"testing"

	"chaffmec/internal/chaff"
	"chaffmec/internal/engine"
	"chaffmec/internal/mobility"
)

// The values below pin the current sampled streams against accidental
// drift. They were re-recorded ONCE, deliberately, when the repository
// moved onto the internal/rng substrate (PR 2): per-run streams are now
// splitmix64 (reseedable per-worker sources) instead of math/rand's
// lagged-Fibonacci source, and markov.Chain.Sample maps uniforms to
// states through Walker alias tables instead of the linear cumulative
// scan — both change which trajectories a given (seed, run) draws, by
// design. The run→stream derivation itself (rng.Derive, the old
// engine.MixSeed algorithm) is unchanged. Any future difference here is
// a regression unless it is an equally deliberate, documented stream
// change re-pinned in the same commit (see the internal/rng package doc
// for the stream-stability contract).
const pinTol = 1e-12

func assertSeries(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", name, len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > pinTol {
			t.Fatalf("%s[%d] = %v, want %v", name, i, got[i], want[i])
		}
	}
}

func TestRunMatchesPreRefactorValues(t *testing.T) {
	c := modelChain(t, mobility.ModelSpatiallySkewed)
	mo := chaff.NewMO(c)
	cases := []struct {
		name                      string
		sc                        Scenario
		perSlot, stderr, detected []float64
		overall                   float64
	}{
		{
			name:    "MO-basic",
			sc:      Scenario{Chain: c, Strategy: mo, NumChaffs: 2, Horizon: 8},
			perSlot: []float64{0.21875, 0.09375000000000003, 0.09375000000000001, 0.0625, 0.0625, 0.03125, 0, 0.03125},
			stderr: []float64{0.07424858801742056, 0.052351460373382196, 0.0523514603733822,
				0.04347552147751578, 0.04347552147751578, 0.03125, 0, 0.031249999999999997},
			detected: []float64{0.07291666666666667, 0.03125, 0.010416666666666671,
				0, 0, 0, 0, 0},
			overall: 0.07421875,
		},
		{
			name:    "IM-basic",
			sc:      Scenario{Chain: c, Strategy: chaff.NewIM(c), NumChaffs: 3, Horizon: 8},
			perSlot: []float64{0.34375, 0.46874999999999994, 0.37500000000000006, 0.4375, 0.5, 0.43750000000000006, 0.37500000000000006, 0.34375000000000006},
			stderr: []float64{0.08530513305661303, 0.08962708359030336, 0.08695104295503155,
				0.08909830562090465, 0.08980265101338746, 0.08909830562090465,
				0.08695104295503155, 0.08530513305661303},
			detected: []float64{0.23958333333333334, 0.28125, 0.3125, 0.34375000000000006, 0.28125, 0.25,
				0.25, 0.28125},
			overall: 0.41015625,
		},
		{
			name: "MO-advanced",
			sc: Scenario{Chain: c, Strategy: mo, NumChaffs: 1, Horizon: 8,
				Detector: AdvancedDetector, Gamma: mo.Gamma},
			perSlot:  []float64{1, 1, 1, 1, 1, 1, 1, 1},
			stderr:   []float64{0, 0, 0, 0, 0, 0, 0, 0},
			detected: []float64{1, 1, 1, 1, 1, 1, 1, 1},
			overall:  1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(context.Background(), tc.sc, engine.Options{Runs: 32, Seed: 12345, Workers: 3})
			if err != nil {
				t.Fatal(err)
			}
			assertSeries(t, "PerSlot", res.PerSlot, tc.perSlot)
			assertSeries(t, "PerSlotStdErr", res.PerSlotStdErr, tc.stderr)
			assertSeries(t, "Detection", res.Detection, tc.detected)
			if math.Abs(res.Overall-tc.overall) > pinTol {
				t.Fatalf("Overall = %v, want %v", res.Overall, tc.overall)
			}
			if res.Runs != 32 {
				t.Fatalf("Runs = %d, want 32", res.Runs)
			}
		})
	}
}
