package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"chaffmec/internal/chaff"
	"chaffmec/internal/engine"
	"chaffmec/internal/mobility"
)

// TestShardedRunMergesBitIdentical runs the pinned regression scenario as
// complementary shards and demands the merged accumulators match the
// whole run bit-for-bit — the property the cross-process Job/Report
// workflow rests on.
func TestShardedRunMergesBitIdentical(t *testing.T) {
	c := modelChain(t, mobility.ModelSpatiallySkewed)
	sc := Scenario{Chain: c, Strategy: chaff.NewMO(c), NumChaffs: 2, Horizon: 8}
	opts := engine.Options{Runs: 32, Seed: 12345, Workers: 3}

	whole, err := Run(context.Background(), sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	track := engine.NewSeriesStats(sc.Horizon)
	det := engine.NewSeriesStats(sc.Horizon)
	runs := 0
	for i := 0; i < 3; i++ {
		shardOpts := opts
		shardOpts.Shard = engine.Shard{Index: i, Count: 3}
		part, err := Run(context.Background(), sc, shardOpts)
		if err != nil {
			t.Fatal(err)
		}
		runs += part.Runs
		if err := track.Merge(part.TrackStats); err != nil {
			t.Fatal(err)
		}
		if err := det.Merge(part.DetectionStats); err != nil {
			t.Fatal(err)
		}
	}
	if runs != 32 {
		t.Fatalf("shards ran %d runs, want 32", runs)
	}
	if !reflect.DeepEqual(track.Snapshot(), whole.TrackStats.Snapshot()) {
		t.Fatal("merged tracking accumulator differs from whole run")
	}
	if !reflect.DeepEqual(det.Snapshot(), whole.DetectionStats.Snapshot()) {
		t.Fatal("merged detection accumulator differs from whole run")
	}
	if !reflect.DeepEqual(track.Mean(), whole.PerSlot) || !reflect.DeepEqual(track.StdErr(), whole.PerSlotStdErr) {
		t.Fatal("merged aggregates differ from whole run")
	}
}

// TestRunContextCancel proves cancellation propagates through the
// harness: the engine stops dispatching and the context error surfaces.
func TestRunContextCancel(t *testing.T) {
	c := modelChain(t, mobility.ModelNonSkewed)
	sc := Scenario{Chain: c, Strategy: chaff.NewMO(c), NumChaffs: 1, Horizon: 40}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	begin := time.Now()
	_, err := Run(ctx, sc, engine.Options{Runs: 1_000_000, Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(begin); elapsed > 5*time.Second {
		t.Fatalf("cancelled run still took %v", elapsed)
	}
}
