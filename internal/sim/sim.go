// Package sim is the Monte-Carlo harness behind the paper's evaluation
// (Section VII): it repeats a chaff-vs-eavesdropper scenario over many
// independently seeded runs in parallel and aggregates per-slot tracking
// (and detection) accuracy, matching the paper's protocol of averaging
// 1000 runs at T=100.
//
// Execution is delegated to internal/engine: detectors are constructed
// once per scenario, each worker keeps a reusable detect.Workspace and
// trajectory slice, and per-run results are folded into streaming
// statistics in deterministic run order.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"chaffmec/internal/chaff"
	"chaffmec/internal/detect"
	"chaffmec/internal/engine"
	"chaffmec/internal/markov"
)

// DetectorKind selects the eavesdropper model of a scenario.
type DetectorKind int

const (
	// BasicDetector is the ML detector of Section III (Eq. 1).
	BasicDetector DetectorKind = iota
	// AdvancedDetector is the strategy-aware eavesdropper of Section VI-A;
	// Scenario.Gamma must be set.
	AdvancedDetector
)

// Scenario describes one synthetic experiment.
type Scenario struct {
	// Chain is the user's mobility model (the eavesdropper knows it too).
	Chain *markov.Chain
	// Strategy controls the chaffs.
	Strategy chaff.Strategy
	// NumChaffs is N−1 ≥ 1.
	NumChaffs int
	// Horizon is the trajectory length T.
	Horizon int
	// Detector selects the eavesdropper; AdvancedDetector requires Gamma.
	Detector DetectorKind
	// Gamma is the strategy map the advanced eavesdropper assumes the
	// user employs (normally the deterministic variant of Strategy).
	Gamma detect.GammaFunc
	// CollectCt additionally gathers the per-slot log-likelihood gaps
	// c_t (t ≥ 2, Eq. 15) between the user and the first chaff, for the
	// Fig. 6 distribution plots.
	CollectCt bool
}

func (sc *Scenario) validate() error {
	switch {
	case sc.Chain == nil:
		return errors.New("sim: scenario needs a chain")
	case sc.Strategy == nil:
		return errors.New("sim: scenario needs a strategy")
	case sc.NumChaffs < 1:
		return fmt.Errorf("sim: NumChaffs %d must be >= 1", sc.NumChaffs)
	case sc.Horizon < 1:
		return fmt.Errorf("sim: Horizon %d must be >= 1", sc.Horizon)
	case sc.Detector == AdvancedDetector && sc.Gamma == nil:
		return errors.New("sim: advanced detector requires Gamma")
	}
	return nil
}

// Result aggregates a scenario's Monte-Carlo runs (possibly one shard
// of them — see engine.Options.Shard).
type Result struct {
	// PerSlot[t] is the mean tracking accuracy at slot t across runs.
	PerSlot []float64
	// PerSlotStdErr[t] is the standard error of PerSlot[t].
	PerSlotStdErr []float64
	// Detection[t] is the mean detection accuracy at slot t.
	Detection []float64
	// Overall is the time-average of PerSlot — the paper's headline
	// tracking-accuracy number.
	Overall float64
	// Runs is the number of Monte-Carlo runs aggregated (the shard's
	// size when the options select one).
	Runs int
	// CtSamples holds the collected c_t values when Scenario.CollectCt,
	// in run order.
	CtSamples []float64
	// TrackStats and DetectionStats are the raw position-aware
	// accumulators behind PerSlot/Detection: the exactly-mergeable
	// partials the Job/Report shard workflow serializes.
	TrackStats, DetectionStats *engine.SeriesStats
}

// newDetector builds the scenario's eavesdropper once, hoisting detector
// construction (and the steady-state solve behind it) out of the per-run
// loop.
func (sc *Scenario) newDetector() (detect.PrefixDetector, error) {
	switch sc.Detector {
	case BasicDetector:
		return detect.NewMLDetector(sc.Chain), nil
	case AdvancedDetector:
		return detect.NewAdvancedDetector(sc.Chain, sc.Gamma)
	default:
		return nil, fmt.Errorf("sim: unknown detector kind %d", sc.Detector)
	}
}

// simWorker is the per-worker scratch: the reusable detection workspace
// and the trajectory slice rebuilt (not reallocated) every run.
type simWorker struct {
	ws  *detect.Workspace
	trs []markov.Trajectory
}

// runResult is one run's contribution to the aggregate. The series are
// freshly allocated per run (they outlive the worker's next run while
// waiting for in-order accumulation); all large scratch stays in
// simWorker.
type runResult struct {
	track, det []float64
	ct         []float64
}

// Run executes the scenario on the shared Monte-Carlo engine: the whole
// experiment, or the contiguous global-run slice opts.Shard selects.
// ctx cancels between runs.
func Run(ctx context.Context, sc Scenario, opts engine.Options) (*Result, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	det, err := sc.newDetector()
	if err != nil {
		return nil, err
	}
	o := opts.Normalized()
	start, _ := o.Range()
	T := sc.Horizon

	track := engine.NewSeriesStatsAt(T, start)
	detection := engine.NewSeriesStatsAt(T, start)
	var cts []float64

	err = engine.Run(ctx, o, engine.Config[*simWorker, runResult]{
		NewWorker: func(int) (*simWorker, error) {
			return &simWorker{
				ws:  detect.NewWorkspace(),
				trs: make([]markov.Trajectory, 0, 1+sc.NumChaffs),
			}, nil
		},
		Run: func(w *simWorker, run int, rng *rand.Rand) (runResult, error) {
			return sc.runOnce(w, det, rng)
		},
		Accumulate: func(run int, r runResult) error {
			if err := track.Add(r.track); err != nil {
				return err
			}
			if err := detection.Add(r.det); err != nil {
				return err
			}
			cts = append(cts, r.ct...)
			return nil
		},
	})
	if err != nil {
		return nil, err
	}

	res := &Result{
		PerSlot:        track.Mean(),
		PerSlotStdErr:  track.StdErr(),
		Detection:      detection.Mean(),
		Runs:           track.N(),
		CtSamples:      cts,
		TrackStats:     track,
		DetectionStats: detection,
	}
	res.Overall = detect.TimeAverage(res.PerSlot)
	return res, nil
}

// runOnce executes a single Monte-Carlo run on the worker's scratch state.
// The rng is the run's private stream (rng.Derive(seed, run) — see
// internal/rng), so the result depends only on (seed, run index).
func (sc *Scenario) runOnce(w *simWorker, det detect.PrefixDetector, rng *rand.Rand) (runResult, error) {
	user, err := sc.Chain.Sample(rng, sc.Horizon)
	if err != nil {
		return runResult{}, fmt.Errorf("sim: sampling user: %w", err)
	}
	chaffs, err := sc.Strategy.GenerateChaffs(rng, user, sc.NumChaffs)
	if err != nil {
		return runResult{}, fmt.Errorf("sim: generating chaffs: %w", err)
	}
	w.trs = append(w.trs[:0], user)
	w.trs = append(w.trs, chaffs...)

	dets, err := det.PrefixDetectionsWith(w.ws, w.trs)
	if err != nil {
		return runResult{}, err
	}
	var out runResult
	out.track, err = detect.TrackingAccuracySeries(dets, w.trs, 0)
	if err != nil {
		return runResult{}, err
	}
	out.det, err = detect.DetectionAccuracySeries(dets, len(w.trs), 0)
	if err != nil {
		return runResult{}, err
	}
	if sc.CollectCt {
		ch := chaffs[0]
		for t := 1; t < sc.Horizon; t++ {
			v := sc.Chain.LogProb(user[t-1], user[t]) - sc.Chain.LogProb(ch[t-1], ch[t])
			if !math.IsInf(v, 0) && !math.IsNaN(v) {
				out.ct = append(out.ct, v)
			}
		}
	}
	return out, nil
}
