// Package sim is the Monte-Carlo harness behind the paper's evaluation
// (Section VII): it repeats a chaff-vs-eavesdropper scenario over many
// independently seeded runs in parallel and aggregates per-slot tracking
// (and detection) accuracy, matching the paper's protocol of averaging
// 1000 runs at T=100.
package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"chaffmec/internal/chaff"
	"chaffmec/internal/detect"
	"chaffmec/internal/markov"
)

// DetectorKind selects the eavesdropper model of a scenario.
type DetectorKind int

const (
	// BasicDetector is the ML detector of Section III (Eq. 1).
	BasicDetector DetectorKind = iota
	// AdvancedDetector is the strategy-aware eavesdropper of Section VI-A;
	// Scenario.Gamma must be set.
	AdvancedDetector
)

// Scenario describes one synthetic experiment.
type Scenario struct {
	// Chain is the user's mobility model (the eavesdropper knows it too).
	Chain *markov.Chain
	// Strategy controls the chaffs.
	Strategy chaff.Strategy
	// NumChaffs is N−1 ≥ 1.
	NumChaffs int
	// Horizon is the trajectory length T.
	Horizon int
	// Detector selects the eavesdropper; AdvancedDetector requires Gamma.
	Detector DetectorKind
	// Gamma is the strategy map the advanced eavesdropper assumes the
	// user employs (normally the deterministic variant of Strategy).
	Gamma detect.GammaFunc
	// CollectCt additionally gathers the per-slot log-likelihood gaps
	// c_t (t ≥ 2, Eq. 15) between the user and the first chaff, for the
	// Fig. 6 distribution plots.
	CollectCt bool
}

func (sc *Scenario) validate() error {
	switch {
	case sc.Chain == nil:
		return errors.New("sim: scenario needs a chain")
	case sc.Strategy == nil:
		return errors.New("sim: scenario needs a strategy")
	case sc.NumChaffs < 1:
		return fmt.Errorf("sim: NumChaffs %d must be >= 1", sc.NumChaffs)
	case sc.Horizon < 1:
		return fmt.Errorf("sim: Horizon %d must be >= 1", sc.Horizon)
	case sc.Detector == AdvancedDetector && sc.Gamma == nil:
		return errors.New("sim: advanced detector requires Gamma")
	}
	return nil
}

// Result aggregates a scenario's Monte-Carlo runs.
type Result struct {
	// PerSlot[t] is the mean tracking accuracy at slot t across runs.
	PerSlot []float64
	// PerSlotStdErr[t] is the standard error of PerSlot[t].
	PerSlotStdErr []float64
	// Detection[t] is the mean detection accuracy at slot t.
	Detection []float64
	// Overall is the time-average of PerSlot — the paper's headline
	// tracking-accuracy number.
	Overall float64
	// Runs is the number of Monte-Carlo runs aggregated.
	Runs int
	// CtSamples holds the collected c_t values when Scenario.CollectCt.
	CtSamples []float64
}

// Options tunes the runner.
type Options struct {
	// Runs is the number of Monte-Carlo repetitions (default 1000, the
	// paper's setting).
	Runs int
	// Seed derives the per-run RNG streams; a fixed seed makes the whole
	// experiment reproducible regardless of scheduling.
	Seed int64
	// Workers caps the parallel workers (default GOMAXPROCS).
	Workers int
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Runs <= 0 {
		out.Runs = 1000
	}
	if out.Workers <= 0 {
		out.Workers = runtime.GOMAXPROCS(0)
	}
	return out
}

// Run executes the scenario.
func Run(sc Scenario, opts Options) (*Result, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	o := opts.withDefaults()
	T := sc.Horizon

	type partial struct {
		sum, sumSq, det []float64
		ct              []float64
		err             error
	}
	jobs := make(chan int)
	parts := make(chan *partial, o.Workers)
	var wg sync.WaitGroup
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := &partial{
				sum:   make([]float64, T),
				sumSq: make([]float64, T),
				det:   make([]float64, T),
			}
			for run := range jobs {
				track, det, ct, err := sc.runOnce(o.Seed, run)
				if err != nil {
					p.err = err
					break
				}
				for t := 0; t < T; t++ {
					p.sum[t] += track[t]
					p.sumSq[t] += track[t] * track[t]
					p.det[t] += det[t]
				}
				p.ct = append(p.ct, ct...)
			}
			parts <- p
		}()
	}
	for run := 0; run < o.Runs; run++ {
		jobs <- run
	}
	close(jobs)
	wg.Wait()
	close(parts)

	sum := make([]float64, T)
	sumSq := make([]float64, T)
	detSum := make([]float64, T)
	var cts []float64
	for p := range parts {
		if p.err != nil {
			return nil, p.err
		}
		for t := 0; t < T; t++ {
			sum[t] += p.sum[t]
			sumSq[t] += p.sumSq[t]
			detSum[t] += p.det[t]
		}
		cts = append(cts, p.ct...)
	}

	res := &Result{
		PerSlot:       make([]float64, T),
		PerSlotStdErr: make([]float64, T),
		Detection:     make([]float64, T),
		Runs:          o.Runs,
		CtSamples:     cts,
	}
	n := float64(o.Runs)
	for t := 0; t < T; t++ {
		mean := sum[t] / n
		res.PerSlot[t] = mean
		res.Detection[t] = detSum[t] / n
		if o.Runs > 1 {
			variance := (sumSq[t] - n*mean*mean) / (n - 1)
			if variance < 0 {
				variance = 0
			}
			res.PerSlotStdErr[t] = math.Sqrt(variance / n)
		}
	}
	res.Overall = detect.TimeAverage(res.PerSlot)
	return res, nil
}

// runOnce executes a single Monte-Carlo run with its own deterministic RNG
// stream. Stream layout: run r uses seed ⊕ golden-ratio mixing so streams
// are decorrelated but reproducible.
func (sc *Scenario) runOnce(seed int64, run int) (track, det, ct []float64, err error) {
	rng := rand.New(rand.NewSource(mixSeed(seed, int64(run))))
	user, err := sc.Chain.Sample(rng, sc.Horizon)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("sim: sampling user: %w", err)
	}
	chaffs, err := sc.Strategy.GenerateChaffs(rng, user, sc.NumChaffs)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("sim: generating chaffs: %w", err)
	}
	trs := make([]markov.Trajectory, 0, 1+len(chaffs))
	trs = append(trs, user)
	trs = append(trs, chaffs...)

	var dets [][]int
	switch sc.Detector {
	case BasicDetector:
		dets, err = detect.NewMLDetector(sc.Chain).PrefixDetections(trs)
	case AdvancedDetector:
		var adv *detect.AdvancedDetector
		adv, err = detect.NewAdvancedDetector(sc.Chain, sc.Gamma)
		if err == nil {
			dets, err = adv.PrefixDetections(trs)
		}
	default:
		err = fmt.Errorf("sim: unknown detector kind %d", sc.Detector)
	}
	if err != nil {
		return nil, nil, nil, err
	}
	track, err = detect.TrackingAccuracySeries(dets, trs, 0)
	if err != nil {
		return nil, nil, nil, err
	}
	det, err = detect.DetectionAccuracySeries(dets, len(trs), 0)
	if err != nil {
		return nil, nil, nil, err
	}
	if sc.CollectCt {
		ch := chaffs[0]
		for t := 1; t < sc.Horizon; t++ {
			v := sc.Chain.LogProb(user[t-1], user[t]) - sc.Chain.LogProb(ch[t-1], ch[t])
			if !math.IsInf(v, 0) && !math.IsNaN(v) {
				ct = append(ct, v)
			}
		}
	}
	return track, det, ct, nil
}

// mixSeed decorrelates per-run RNG streams from a base seed.
func mixSeed(seed, run int64) int64 {
	x := uint64(seed) ^ (uint64(run)+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}
