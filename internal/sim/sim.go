// Package sim is the Monte-Carlo harness behind the paper's evaluation
// (Section VII): it repeats a chaff-vs-eavesdropper scenario over many
// independently seeded runs in parallel and aggregates per-slot tracking
// (and detection) accuracy, matching the paper's protocol of averaging
// 1000 runs at T=100.
//
// Execution is delegated to internal/engine: detectors are constructed
// once per scenario, each worker keeps a reusable detect.Workspace and
// trajectory slice, and per-run results are folded into streaming
// statistics in deterministic run order.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"chaffmec/internal/chaff"
	"chaffmec/internal/detect"
	"chaffmec/internal/engine"
	"chaffmec/internal/markov"
	"chaffmec/internal/tune"
)

// DetectorKind selects the eavesdropper model of a scenario.
type DetectorKind int

const (
	// BasicDetector is the ML detector of Section III (Eq. 1).
	BasicDetector DetectorKind = iota
	// AdvancedDetector is the strategy-aware eavesdropper of Section VI-A;
	// Scenario.Gamma must be set.
	AdvancedDetector
)

// Scenario describes one synthetic experiment.
type Scenario struct {
	// Chain is the user's mobility model (the eavesdropper knows it too).
	Chain *markov.Chain
	// Strategy controls the chaffs.
	Strategy chaff.Strategy
	// NumChaffs is N−1 ≥ 1.
	NumChaffs int
	// Horizon is the trajectory length T.
	Horizon int
	// Detector selects the eavesdropper; AdvancedDetector requires Gamma.
	Detector DetectorKind
	// Gamma is the strategy map the advanced eavesdropper assumes the
	// user employs (normally the deterministic variant of Strategy).
	Gamma detect.GammaFunc
	// CollectCt additionally gathers the per-slot log-likelihood gaps
	// c_t (t ≥ 2, Eq. 15) between the user and the first chaff, for the
	// Fig. 6 distribution plots.
	CollectCt bool
}

func (sc *Scenario) validate() error {
	switch {
	case sc.Chain == nil:
		return errors.New("sim: scenario needs a chain")
	case sc.Strategy == nil:
		return errors.New("sim: scenario needs a strategy")
	case sc.NumChaffs < 1:
		return fmt.Errorf("sim: NumChaffs %d must be >= 1", sc.NumChaffs)
	case sc.Horizon < 1:
		return fmt.Errorf("sim: Horizon %d must be >= 1", sc.Horizon)
	case sc.Detector == AdvancedDetector && sc.Gamma == nil:
		return errors.New("sim: advanced detector requires Gamma")
	}
	return nil
}

// Result aggregates a scenario's Monte-Carlo runs (possibly one shard
// of them — see engine.Options.Shard).
type Result struct {
	// PerSlot[t] is the mean tracking accuracy at slot t across runs.
	PerSlot []float64
	// PerSlotStdErr[t] is the standard error of PerSlot[t].
	PerSlotStdErr []float64
	// Detection[t] is the mean detection accuracy at slot t.
	Detection []float64
	// Overall is the time-average of PerSlot — the paper's headline
	// tracking-accuracy number.
	Overall float64
	// Runs is the number of Monte-Carlo runs aggregated (the shard's
	// size when the options select one).
	Runs int
	// CtSamples holds the collected c_t values when Scenario.CollectCt,
	// in run order.
	CtSamples []float64
	// TrackStats and DetectionStats are the raw position-aware
	// accumulators behind PerSlot/Detection: the exactly-mergeable
	// partials the Job/Report shard workflow serializes.
	TrackStats, DetectionStats *engine.SeriesStats
}

// newDetector builds the scenario's eavesdropper once, hoisting detector
// construction (and the steady-state solve behind it) out of the per-run
// loop.
func (sc *Scenario) newDetector() (detect.PrefixDetector, error) {
	switch sc.Detector {
	case BasicDetector:
		return detect.NewMLDetector(sc.Chain), nil
	case AdvancedDetector:
		return detect.NewAdvancedDetector(sc.Chain, sc.Gamma)
	default:
		return nil, fmt.Errorf("sim: unknown detector kind %d", sc.Detector)
	}
}

// simWorker is the per-worker scratch: the reusable detection workspace,
// the trajectory slice rebuilt (not reallocated) every run on the scalar
// path, and the batch-path arena feeds — the SoA user sample block plus
// the gather/chaff buffers GenerateInto fills in place. Everything here
// is reused across every run the worker executes, which is what takes
// the steady-state per-run allocations to ~0.
type simWorker struct {
	ws  *detect.Workspace
	trs []markov.Trajectory

	users     []int32             // markov.SampleBatch layout: users[t*B+r]
	userBuf   markov.Trajectory   // run r's user, gathered for chaff generation
	chaffBufs []markov.Trajectory // reused chaff buffers, one per chaff
}

// runResult is one run's contribution to the aggregate. The series are
// freshly allocated per run (they outlive the worker's next run while
// waiting for in-order accumulation); all large scratch stays in
// simWorker.
type runResult struct {
	track, det []float64
	ct         []float64
}

// Run executes the scenario on the shared Monte-Carlo engine: the whole
// experiment, or the contiguous global-run slice opts.Shard selects.
// ctx cancels between runs.
func Run(ctx context.Context, sc Scenario, opts engine.Options) (*Result, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	det, err := sc.newDetector()
	if err != nil {
		return nil, err
	}
	o := opts.Normalized()
	start, _ := o.Range()
	T := sc.Horizon

	track := engine.NewSeriesStatsAt(T, start)
	detection := engine.NewSeriesStatsAt(T, start)
	var cts []float64

	cfg := engine.Config[*simWorker, runResult]{
		NewWorker: func(int) (*simWorker, error) {
			return sc.newWorker(), nil
		},
		FreeWorker: func(w *simWorker) { w.ws.Release() },
		Accumulate: func(run int, r runResult) error {
			if err := track.Add(r.track); err != nil {
				return err
			}
			if err := detection.Add(r.det); err != nil {
				return err
			}
			cts = append(cts, r.ct...)
			return nil
		},
	}
	if scorer, ok := det.(detect.BlockScorer); ok {
		// Batch path: whole dispatch chunks sampled and scored through the
		// SoA kernels; bit-identical to the scalar path below. The chunk
		// width comes from the block-geometry calibration for this kernel
		// shape (cached per host; chunking never changes results).
		cfg.RunBlock = func(w *simWorker, start int, rngs []*rand.Rand, out []runResult) error {
			return sc.runBlock(w, scorer, rngs, out)
		}
		cfg.BlockSize = tune.BlockSize(sc.Chain, 1+sc.NumChaffs, T)
	} else {
		cfg.Run = func(w *simWorker, run int, rng *rand.Rand) (runResult, error) {
			return sc.runOnce(w, det, rng)
		}
	}
	err = engine.Run(ctx, o, cfg)
	if err != nil {
		return nil, err
	}

	res := &Result{
		PerSlot:        track.Mean(),
		PerSlotStdErr:  track.StdErr(),
		Detection:      detection.Mean(),
		Runs:           track.N(),
		CtSamples:      cts,
		TrackStats:     track,
		DetectionStats: detection,
	}
	res.Overall = detect.TimeAverage(res.PerSlot)
	return res, nil
}

// newWorker builds one worker's scratch, pre-sizing the gather and chaff
// buffers to the horizon so the hot loop never grows them.
func (sc *Scenario) newWorker() *simWorker {
	w := &simWorker{
		ws:        detect.GetWorkspace(),
		trs:       make([]markov.Trajectory, 0, 1+sc.NumChaffs),
		userBuf:   make(markov.Trajectory, sc.Horizon),
		chaffBufs: make([]markov.Trajectory, sc.NumChaffs),
	}
	for i := range w.chaffBufs {
		w.chaffBufs[i] = make(markov.Trajectory, sc.Horizon)
	}
	return w
}

// runBlock executes a whole engine dispatch chunk through the batch
// kernels: the users of all runs in flight are sampled in one SoA block
// (rngs[r] draws exactly what runOnce's Sample would), chaffs are
// generated into reused worker buffers, and the detector scores the
// whole block in one slot-major sweep. Per-slot series are copied out of
// the arena into one backing allocation per block (results must outlive
// the arena's reuse by the next chunk), so steady-state allocations are
// ~2 per block instead of ~8 per run.
//
//chaffmec:hotpath
func (sc *Scenario) runBlock(w *simWorker, scorer detect.BlockScorer, rngs []*rand.Rand, out []runResult) error {
	B, T := len(rngs), sc.Horizon
	if cap(w.users) < B*T {
		w.users = make([]int32, B*T)
	}
	users := w.users[:B*T]
	if err := sc.Chain.SampleBatch(rngs, T, users); err != nil {
		return fmt.Errorf("sim: sampling user: %w", err)
	}
	blk := w.ws.Block(B, 1+sc.NumChaffs, T)
	for r := 0; r < B; r++ {
		for t := 0; t < T; t++ {
			w.userBuf[t] = int(users[t*B+r])
		}
		if err := chaff.GenerateInto(sc.Strategy, rngs[r], w.userBuf, w.chaffBufs); err != nil {
			return fmt.Errorf("sim: generating chaffs: %w", err)
		}
		blk.SetColumn(r, 0, users, B, r)
		for i, ch := range w.chaffBufs {
			if err := blk.SetTrajectory(r, 1+i, ch); err != nil {
				return err
			}
		}
		if sc.CollectCt {
			// c_t needs this run's user and first chaff, both of which the
			// next iteration overwrites — collect before moving on.
			ch := w.chaffBufs[0]
			for t := 1; t < T; t++ {
				v := sc.Chain.LogProb(w.userBuf[t-1], w.userBuf[t]) - sc.Chain.LogProb(ch[t-1], ch[t])
				if !math.IsInf(v, 0) && !math.IsNaN(v) {
					//lint:ignore hotpath by design: c_t samples are only collected on Fig. 7 runs (CollectCt) and must escape the arena; the paper protocol never takes this branch
					out[r].ct = append(out[r].ct, v)
				}
			}
		}
	}
	if err := scorer.ScoreBlock(blk, 0); err != nil {
		return err
	}
	//lint:ignore hotpath by design: results must outlive the arena's reuse by the next chunk, so each block pays exactly one backing allocation (alloc-pinned in block_test)
	backing := make([]float64, 2*B*T)
	for r := range out {
		track := backing[2*r*T : (2*r+1)*T]
		det := backing[(2*r+1)*T : (2*r+2)*T]
		copy(track, blk.Tracking(r))
		copy(det, blk.Detection(r))
		out[r].track, out[r].det = track, det
	}
	return nil
}

// runOnce executes a single Monte-Carlo run on the worker's scratch state.
// The rng is the run's private stream (rng.Derive(seed, run) — see
// internal/rng), so the result depends only on (seed, run index).
func (sc *Scenario) runOnce(w *simWorker, det detect.PrefixDetector, rng *rand.Rand) (runResult, error) {
	user, err := sc.Chain.Sample(rng, sc.Horizon)
	if err != nil {
		return runResult{}, fmt.Errorf("sim: sampling user: %w", err)
	}
	chaffs, err := sc.Strategy.GenerateChaffs(rng, user, sc.NumChaffs)
	if err != nil {
		return runResult{}, fmt.Errorf("sim: generating chaffs: %w", err)
	}
	w.trs = append(w.trs[:0], user)
	w.trs = append(w.trs, chaffs...)

	dets, err := det.PrefixDetectionsWith(w.ws, w.trs)
	if err != nil {
		return runResult{}, err
	}
	var out runResult
	out.track, err = detect.TrackingAccuracySeries(dets, w.trs, 0)
	if err != nil {
		return runResult{}, err
	}
	out.det, err = detect.DetectionAccuracySeries(dets, len(w.trs), 0)
	if err != nil {
		return runResult{}, err
	}
	if sc.CollectCt {
		ch := chaffs[0]
		for t := 1; t < sc.Horizon; t++ {
			v := sc.Chain.LogProb(user[t-1], user[t]) - sc.Chain.LogProb(ch[t-1], ch[t])
			if !math.IsInf(v, 0) && !math.IsNaN(v) {
				out.ct = append(out.ct, v)
			}
		}
	}
	return out, nil
}
