package sim

import (
	"context"
	"math"
	"reflect"
	"runtime"
	"testing"

	"chaffmec/internal/analysis"
	"chaffmec/internal/chaff"
	"chaffmec/internal/engine"
	"chaffmec/internal/markov"
	"chaffmec/internal/mobility"
	"chaffmec/internal/rng"
)

func modelChain(t *testing.T, id mobility.ModelID) *markov.Chain {
	t.Helper()
	c, err := mobility.Build(id, rng.New(99), 10)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRunValidation(t *testing.T) {
	c := modelChain(t, mobility.ModelNonSkewed)
	bad := []Scenario{
		{},
		{Chain: c},
		{Chain: c, Strategy: chaff.NewIM(c)},
		{Chain: c, Strategy: chaff.NewIM(c), NumChaffs: 1},
		{Chain: c, Strategy: chaff.NewIM(c), NumChaffs: 1, Horizon: 10, Detector: AdvancedDetector},
	}
	for i, sc := range bad {
		if _, err := Run(context.Background(), sc, engine.Options{Runs: 1}); err == nil {
			t.Fatalf("scenario %d accepted", i)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	c := modelChain(t, mobility.ModelSpatiallySkewed)
	sc := Scenario{Chain: c, Strategy: chaff.NewIM(c), NumChaffs: 3, Horizon: 20}
	a, err := Run(context.Background(), sc, engine.Options{Runs: 50, Seed: 42, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), sc, engine.Options{Runs: 50, Seed: 42, Workers: 13})
	if err != nil {
		t.Fatal(err)
	}
	for tSlot := range a.PerSlot {
		if a.PerSlot[tSlot] != b.PerSlot[tSlot] {
			t.Fatalf("slot %d differs across worker counts: %v vs %v",
				tSlot, a.PerSlot[tSlot], b.PerSlot[tSlot])
		}
	}
	if a.Overall != b.Overall || a.Runs != 50 {
		t.Fatal("aggregate results differ")
	}
}

func TestIMMatchesClosedForm(t *testing.T) {
	// Eq. 11 validation: simulated IM accuracy ≈ Σπ² + (1/N)(1−Σπ²).
	c := modelChain(t, mobility.ModelNonSkewed)
	for _, n := range []int{2, 10} {
		sc := Scenario{Chain: c, Strategy: chaff.NewIM(c), NumChaffs: n - 1, Horizon: 60}
		res, err := Run(context.Background(), sc, engine.Options{Runs: 1200, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		want, err := analysis.IMAccuracy(c, n)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Overall-want) > 0.02 {
			t.Fatalf("N=%d: simulated %v vs Eq.11 %v", n, res.Overall, want)
		}
	}
}

func TestOODrivesAccuracyDown(t *testing.T) {
	c := modelChain(t, mobility.ModelNonSkewed)
	oo := Scenario{Chain: c, Strategy: chaff.NewOO(c), NumChaffs: 1, Horizon: 100}
	im := Scenario{Chain: c, Strategy: chaff.NewIM(c), NumChaffs: 1, Horizon: 100}
	resOO, err := Run(context.Background(), oo, engine.Options{Runs: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	resIM, err := Run(context.Background(), im, engine.Options{Runs: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if resOO.Overall >= resIM.Overall {
		t.Fatalf("OO overall %v not below IM %v", resOO.Overall, resIM.Overall)
	}
	// Per-slot decay: the tail should be near zero on model (a).
	tail := resOO.PerSlot[90]
	for _, v := range resOO.PerSlot[90:] {
		if v > tail {
			tail = v
		}
	}
	if tail > 0.05 {
		t.Fatalf("OO tail accuracy %v, want ≤ 0.05 (Theorem V.4 regime)", tail)
	}
}

func TestMODecaysToZero(t *testing.T) {
	c := modelChain(t, mobility.ModelNonSkewed)
	sc := Scenario{Chain: c, Strategy: chaff.NewMO(c), NumChaffs: 1, Horizon: 100}
	res, err := Run(context.Background(), sc, engine.Options{Runs: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	head := res.PerSlot[0]
	tail := 0.0
	for _, v := range res.PerSlot[90:] {
		tail += v
	}
	tail /= 10
	if tail > 0.05 || tail >= head {
		t.Fatalf("MO accuracy head %v tail %v, want decaying toward 0", head, tail)
	}
}

func TestMLStaysNonZero(t *testing.T) {
	// Eq. 12: P_ML = (1/T)Σπ(x₂,t) > 0 — bounded away from zero.
	c := modelChain(t, mobility.ModelSpatiallySkewed)
	sc := Scenario{Chain: c, Strategy: chaff.NewML(c), NumChaffs: 1, Horizon: 100}
	res, err := Run(context.Background(), sc, engine.Options{Runs: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overall < 0.05 {
		t.Fatalf("ML overall %v, want clearly non-zero on the spatially-skewed model", res.Overall)
	}
}

func TestAdvancedDetectorBeatsDeterministicStrategies(t *testing.T) {
	c := modelChain(t, mobility.ModelNonSkewed)
	mo := chaff.NewMO(c)
	sc := Scenario{
		Chain: c, Strategy: mo, NumChaffs: 1, Horizon: 50,
		Detector: AdvancedDetector, Gamma: mo.Gamma,
	}
	res, err := Run(context.Background(), sc, engine.Options{Runs: 100, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overall < 0.99 {
		t.Fatalf("advanced eavesdropper vs deterministic MO: %v, want ≈ 1", res.Overall)
	}
}

func TestRobustStrategiesResistAdvancedDetector(t *testing.T) {
	c := modelChain(t, mobility.ModelNonSkewed)
	mo := chaff.NewMO(c)
	rmo := chaff.NewRMO(c)
	sc := Scenario{
		Chain: c, Strategy: rmo, NumChaffs: 9, Horizon: 50,
		Detector: AdvancedDetector, Gamma: mo.Gamma,
	}
	res, err := Run(context.Background(), sc, engine.Options{Runs: 100, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overall > 0.5 {
		t.Fatalf("RMO vs advanced eavesdropper: %v, want well below 1", res.Overall)
	}
}

func TestCollectCt(t *testing.T) {
	c := modelChain(t, mobility.ModelNonSkewed)
	sc := Scenario{Chain: c, Strategy: chaff.NewCML(c), NumChaffs: 1, Horizon: 50, CollectCt: true}
	res, err := Run(context.Background(), sc, engine.Options{Runs: 50, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CtSamples) == 0 {
		t.Fatal("no c_t samples collected")
	}
	mean := 0.0
	for _, v := range res.CtSamples {
		mean += v
	}
	mean /= float64(len(res.CtSamples))
	if mean >= 0 {
		t.Fatalf("mean c_t = %v, want < 0 (CML keeps the likelihood race won)", mean)
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	// The engine must make results bitwise independent of parallelism:
	// Workers 1, 4 and GOMAXPROCS all produce the identical Result.
	c := modelChain(t, mobility.ModelBothSkewed)
	sc := Scenario{Chain: c, Strategy: chaff.NewMO(c), NumChaffs: 2, Horizon: 15, CollectCt: true}
	ref, err := Run(context.Background(), sc, engine.Options{Runs: 40, Seed: 21, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		got, err := Run(context.Background(), sc, engine.Options{Runs: 40, Seed: 21, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("workers=%d: result differs from the single-worker run", workers)
		}
	}
}
