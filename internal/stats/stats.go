// Package stats provides the small statistical toolkit used by the
// simulation harness and the experiment reports: summary statistics,
// empirical CDFs, and histograms. Only the standard library is used.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean; 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance; 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// StdErr returns the standard error of the mean.
func StdErr(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval for the mean.
func CI95(xs []float64) float64 { return 1.96 * StdErr(xs) }

// Min and Max return the extrema; they panic on empty input by design
// (caller bug), matching the stdlib's sort conventions.
func Min(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs.
func Max(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// ECDF is an empirical cumulative distribution function over a fixed
// sample. The zero value is unusable; construct with NewECDF.
type ECDF struct {
	sorted []float64
}

// NewECDF copies and sorts the sample.
func NewECDF(xs []float64) (*ECDF, error) {
	if len(xs) == 0 {
		return nil, errors.New("stats: ECDF needs at least one sample")
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &ECDF{sorted: s}, nil
}

// At returns F(x) = fraction of samples ≤ x.
func (e *ECDF) At(x float64) float64 {
	idx := sort.SearchFloat64s(e.sorted, x)
	// Advance past equal values (SearchFloat64s returns the first ≥ x).
	for idx < len(e.sorted) && e.sorted[idx] == x {
		idx++
	}
	return float64(idx) / float64(len(e.sorted))
}

// Quantile returns the q-th empirical quantile, q∈[0,1].
func (e *ECDF) Quantile(q float64) float64 {
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	idx := int(q * float64(len(e.sorted)))
	if idx >= len(e.sorted) {
		idx = len(e.sorted) - 1
	}
	return e.sorted[idx]
}

// Len returns the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// Points returns (x, F(x)) pairs suitable for plotting the CDF curve at
// every distinct sample value.
func (e *ECDF) Points() (xs, fs []float64) {
	n := len(e.sorted)
	for i := 0; i < n; i++ {
		if i+1 < n && e.sorted[i+1] == e.sorted[i] {
			continue
		}
		xs = append(xs, e.sorted[i])
		fs = append(fs, float64(i+1)/float64(n))
	}
	return xs, fs
}

// Histogram bins samples into nbins equal-width bins over [min,max].
type Histogram struct {
	Lo, Hi float64
	Counts []int
	N      int
}

// NewHistogram builds a histogram; it errors on empty input or nbins < 1.
func NewHistogram(xs []float64, nbins int) (*Histogram, error) {
	if len(xs) == 0 {
		return nil, errors.New("stats: histogram needs at least one sample")
	}
	if nbins < 1 {
		return nil, fmt.Errorf("stats: nbins %d must be >= 1", nbins)
	}
	lo, hi := Min(xs), Max(xs)
	if lo == hi {
		hi = lo + 1 // degenerate sample: single bin covers everything
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins), N: len(xs)}
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b >= nbins {
			b = nbins - 1
		}
		if b < 0 {
			b = 0
		}
		h.Counts[b]++
	}
	return h, nil
}

// BinCenter returns the midpoint of bin b.
func (h *Histogram) BinCenter(b int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(b)+0.5)
}

// Density returns the fraction of samples in bin b.
func (h *Histogram) Density(b int) float64 {
	return float64(h.Counts[b]) / float64(h.N)
}
