package stats

import (
	"math"
	"testing"
)

func TestSummaryStatistics(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); math.Abs(got-32.0/7) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", got, 32.0/7)
	}
	if got := StdDev(xs); math.Abs(got-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("StdDev = %v", got)
	}
	if got := StdErr(xs); math.Abs(got-math.Sqrt(32.0/7)/math.Sqrt(8)) > 1e-12 {
		t.Fatalf("StdErr = %v", got)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 || StdErr(nil) != 0 {
		t.Fatal("empty/singleton edge cases wrong")
	}
	if got := CI95(xs); math.Abs(got-1.96*StdErr(xs)) > 1e-12 {
		t.Fatalf("CI95 = %v", got)
	}
	if Min(xs) != 2 || Max(xs) != 9 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
}

func TestECDF(t *testing.T) {
	e, err := NewECDF([]float64{3, 1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, tc := range tests {
		if got := e.At(tc.x); got != tc.want {
			t.Fatalf("F(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if got := e.Quantile(0); got != 1 {
		t.Fatalf("Q(0) = %v, want 1", got)
	}
	if got := e.Quantile(1); got != 3 {
		t.Fatalf("Q(1) = %v, want 3", got)
	}
	if got := e.Quantile(0.5); got != 2 {
		t.Fatalf("Q(0.5) = %v, want 2", got)
	}
	if e.Len() != 4 {
		t.Fatalf("Len = %d", e.Len())
	}
	xs, fs := e.Points()
	if len(xs) != 3 || xs[1] != 2 || fs[1] != 0.75 || fs[2] != 1 {
		t.Fatalf("Points = %v %v", xs, fs)
	}
	if _, err := NewECDF(nil); err == nil {
		t.Fatal("empty ECDF accepted")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{0, 0.1, 0.9, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.Counts[0] != 2 || h.Counts[1] != 2 {
		t.Fatalf("Counts = %v", h.Counts)
	}
	if got := h.Density(0); got != 0.5 {
		t.Fatalf("Density(0) = %v", got)
	}
	if c := h.BinCenter(0); math.Abs(c-0.25) > 1e-12 {
		t.Fatalf("BinCenter(0) = %v", c)
	}
	if _, err := NewHistogram(nil, 3); err == nil {
		t.Fatal("empty histogram accepted")
	}
	if _, err := NewHistogram([]float64{1}, 0); err == nil {
		t.Fatal("nbins=0 accepted")
	}
	// Degenerate single-value sample.
	h2, err := NewHistogram([]float64{5, 5, 5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range h2.Counts {
		total += c
	}
	if total != 3 {
		t.Fatalf("degenerate histogram lost samples: %v", h2.Counts)
	}
}
