//go:build !unix

package store

import "os"

// mapFile on platforms without a usable mmap just reads the blob; the
// release func is a no-op and GetMapped's contract is unchanged.
func mapFile(path string) ([]byte, func(), error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return blob, func() {}, nil
}
