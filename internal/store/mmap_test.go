package store

import (
	"bytes"
	"testing"
)

func TestGetMapped(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("mapped", "blob")
	want := bytes.Repeat([]byte("chaffmec mapped blob "), 1024)
	if err := s.Put("report", key, want); err != nil {
		t.Fatal(err)
	}

	blob, release, ok, err := s.GetMapped("report", key)
	if err != nil || !ok {
		t.Fatalf("GetMapped: ok=%v err=%v", ok, err)
	}
	if release == nil {
		t.Fatal("GetMapped returned ok without a release func")
	}
	if !bytes.Equal(blob, want) {
		t.Fatalf("mapped blob differs: %d bytes, want %d", len(blob), len(want))
	}

	// Atomic-replace semantics: deleting (or re-putting) the key must
	// not invalidate a live mapping — the old inode stays readable.
	if err := s.Delete("report", key); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, want) {
		t.Fatal("live mapping changed under a concurrent Delete")
	}
	release()

	if _, _, ok, err := s.GetMapped("report", key); err != nil || ok {
		t.Fatalf("deleted key: ok=%v err=%v, want absent without error", ok, err)
	}
	if _, _, _, err := s.GetMapped("bad/kind", key); err == nil {
		t.Fatal("invalid kind accepted")
	}
}

func TestGetMappedEmptyBlob(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("mapped", "empty")
	if err := s.Put("report", key, nil); err != nil {
		t.Fatal(err)
	}
	blob, release, ok, err := s.GetMapped("report", key)
	if err != nil || !ok {
		t.Fatalf("GetMapped: ok=%v err=%v", ok, err)
	}
	if len(blob) != 0 {
		t.Fatalf("empty blob mapped to %d bytes", len(blob))
	}
	release()
}
