//go:build unix

package store

import (
	"os"
	"syscall"
)

// mapFile maps path read-only. The mapping survives a concurrent
// replace or Delete of the blob (the old inode stays live until
// unmapped — exactly the atomic-rename semantics Put already provides
// to plain readers). Filesystems that refuse mmap fall back to a heap
// read so callers never have to care which they got.
func mapFile(path string) ([]byte, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if size == 0 {
		return nil, func() {}, nil
	}
	if int64(int(size)) != size {
		return nil, nil, syscall.EFBIG
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		blob, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, nil, rerr
		}
		return blob, func() {}, nil
	}
	return b, func() { syscall.Munmap(b) }, nil //nolint:errcheck // unmap failure leaks pages, nothing to do
}
