// Package store is a content-addressed artifact store on the local
// filesystem: blobs keyed by the canonical hash of what produced them
// (a spec's JSON and the rng stream version), so that re-running the
// same work is a cache hit and an interrupted campaign resumes from
// banked partials for free.
//
// Layout: <root>/<kind>/<kk>/<key>, where kind namespaces artifact
// types ("tracelab", "report"), key is the hex SHA-256 of the inputs
// and kk its first two hex digits (a fan-out level keeping directories
// small). Writes go to a temp file in the same directory and rename
// into place, so readers never observe a partial blob and concurrent
// writers of the same key are idempotent. The store carries no
// manifest or integrity metadata of its own: keys bind artifacts to
// their inputs, and corruption detection is the artifact decoder's job
// — a caller that fails to decode a blob Deletes it and rebuilds.
//
// Pruning is plain filesystem hygiene: `rm -rf <root>/<kind>` drops
// one artifact class, removing the root drops everything; the next
// run rebuilds what it needs.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Store is a content-addressed blob store rooted at one directory.
// All methods are safe for concurrent use, across goroutines and
// across processes sharing the root.
type Store struct {
	root string
}

// Open prepares a store rooted at dir, creating it if absent.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty root directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{root: dir}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// Key derives the content address of an artifact from the parts that
// determine it — typically a canonical spec JSON and rng.StreamVersion.
// Parts are length-framed before hashing so distinct part lists never
// collide by concatenation.
func Key(parts ...string) string {
	h := sha256.New()
	var frame [8]byte
	for _, p := range parts {
		n := len(p)
		for i := range frame {
			frame[i] = byte(n >> (8 * i))
		}
		h.Write(frame[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// path maps (kind, key) to the blob's location, rejecting names that
// would escape the root.
func (s *Store) path(kind, key string) (string, error) {
	if kind == "" || strings.ContainsAny(kind, "/\\.") {
		return "", fmt.Errorf("store: invalid artifact kind %q", kind)
	}
	if len(key) < 2 || strings.ContainsAny(key, "/\\.") {
		return "", fmt.Errorf("store: invalid key %q", key)
	}
	return filepath.Join(s.root, kind, key[:2], key), nil
}

// Get returns the blob stored under (kind, key), or ok=false when the
// store has no such artifact. Errors are real I/O failures.
func (s *Store) Get(kind, key string) (blob []byte, ok bool, err error) {
	p, err := s.path(kind, key)
	if err != nil {
		return nil, false, err
	}
	blob, err = os.ReadFile(p)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: %w", err)
	}
	return blob, true, nil
}

// GetMapped returns the blob stored under (kind, key) as a READ-ONLY
// view backed, where the platform allows, by a memory mapping of the
// blob's file instead of a heap copy — the read path for envelopes big
// enough that copying them through the page cache costs more than the
// decode (the coordinator's banked shard reports). release frees the
// mapping and is non-nil exactly when ok; the caller must not use blob
// — or anything aliasing it, such as reports from
// report.DecodeReports — after calling it, and must never write
// through the view (a mapped page is write-protected). On platforms
// without mmap this degrades to Get plus a no-op release.
func (s *Store) GetMapped(kind, key string) (blob []byte, release func(), ok bool, err error) {
	p, err := s.path(kind, key)
	if err != nil {
		return nil, nil, false, err
	}
	blob, release, err = mapFile(p)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil, false, nil
	}
	if err != nil {
		return nil, nil, false, fmt.Errorf("store: %w", err)
	}
	return blob, release, true, nil
}

// Put stores blob under (kind, key) atomically: a reader concurrently
// Getting the key sees either nothing or the whole blob, never a
// partial write. Re-putting an existing key replaces it.
func (s *Store) Put(kind, key string, blob []byte) error {
	p, err := s.path(kind, key)
	if err != nil {
		return err
	}
	dir := filepath.Dir(p)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "."+key+".tmp*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Delete drops the artifact stored under (kind, key); deleting an
// absent key is a no-op. Callers use it to evict blobs that failed to
// decode before rebuilding them.
func (s *Store) Delete(kind, key string) error {
	p, err := s.path(kind, key)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// EnvStore names the environment variable that points the process-wide
// default store at a directory. Unset, the default store is nil and
// every caller-side cache check is skipped — runs stay hermetic unless
// persistence is asked for (the env var or the -store flag).
const EnvStore = "CHAFFMEC_STORE"

var (
	defaultMu   sync.Mutex
	defaultSet  bool
	defaultStor *Store
)

// Default returns the process-wide store: the one installed by
// SetDefault, else one rooted at $CHAFFMEC_STORE, else nil (no
// persistence). A nil *Store is a valid "disabled" value — guard use
// sites with a nil check.
func Default() *Store {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if !defaultSet {
		defaultSet = true
		if dir := os.Getenv(EnvStore); dir != "" {
			s, err := Open(dir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "store: disabled: %v\n", err)
			} else {
				defaultStor = s
			}
		}
	}
	return defaultStor
}

// SetDefault installs (or, with nil, disables) the process-wide store.
func SetDefault(s *Store) {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	defaultSet = true
	defaultStor = s
}
