package store

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func open(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir() + "/artifacts")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestKeyFraming(t *testing.T) {
	if Key("ab", "c") == Key("a", "bc") {
		t.Fatal("key collides across part boundaries")
	}
	if Key("x") == Key("x", "") {
		t.Fatal("key ignores empty trailing part")
	}
	if Key("x") != Key("x") {
		t.Fatal("key not deterministic")
	}
	if len(Key()) != 64 {
		t.Fatalf("key length %d, want 64 hex digits", len(Key()))
	}
}

func TestPutGetDelete(t *testing.T) {
	s := open(t)
	key := Key("spec", "stream/1")

	if _, ok, err := s.Get("tracelab", key); err != nil || ok {
		t.Fatalf("empty store Get = ok=%v err=%v", ok, err)
	}
	blob := []byte("artifact bytes")
	if err := s.Put("tracelab", key, blob); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get("tracelab", key)
	if err != nil || !ok || !bytes.Equal(got, blob) {
		t.Fatalf("Get = %q ok=%v err=%v", got, ok, err)
	}
	// The same key under another kind is a distinct artifact.
	if _, ok, _ := s.Get("report", key); ok {
		t.Fatal("kinds share a namespace")
	}
	// Re-put replaces.
	if err := s.Put("tracelab", key, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _, _ := s.Get("tracelab", key); string(got) != "v2" {
		t.Fatalf("re-put kept %q", got)
	}
	if err := s.Delete("tracelab", key); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get("tracelab", key); ok {
		t.Fatal("deleted key still present")
	}
	if err := s.Delete("tracelab", key); err != nil {
		t.Fatal("double delete errored")
	}
}

func TestLayoutAndValidation(t *testing.T) {
	s := open(t)
	key := Key("anything")
	if err := s.Put("report", key, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// The documented layout — prune docs and humans depend on it.
	want := filepath.Join(s.Root(), "report", key[:2], key)
	if _, err := os.Stat(want); err != nil {
		t.Fatalf("blob not at documented path: %v", err)
	}
	// No temp droppings left beside it.
	entries, err := os.ReadDir(filepath.Dir(want))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d entries in blob dir, want 1", len(entries))
	}

	for _, bad := range [][2]string{
		{"", key}, {"a/b", key}, {"..", key},
		{"report", ""}, {"report", "x"}, {"report", "../../etc/passwd"},
	} {
		if err := s.Put(bad[0], bad[1], []byte("x")); err == nil {
			t.Fatalf("Put(%q,%q) accepted", bad[0], bad[1])
		}
		if _, _, err := s.Get(bad[0], bad[1]); err == nil {
			t.Fatalf("Get(%q,%q) accepted", bad[0], bad[1])
		}
	}
}

func TestConcurrentSameKey(t *testing.T) {
	s := open(t)
	key := Key("contended")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			blob := bytes.Repeat([]byte{byte('a' + i)}, 4096)
			for j := 0; j < 20; j++ {
				if err := s.Put("report", key, blob); err != nil {
					t.Error(err)
					return
				}
				got, ok, err := s.Get("report", key)
				if err != nil || !ok {
					t.Errorf("Get ok=%v err=%v", ok, err)
					return
				}
				// Atomicity: any observed blob is some writer's whole
				// blob, never a mixture.
				if len(got) != 4096 || bytes.Count(got, got[:1]) != 4096 {
					t.Errorf("torn read: %d bytes, mixed content", len(got))
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestDefaultFromEnv(t *testing.T) {
	t.Cleanup(func() { SetDefault(nil) })

	dir := t.TempDir() + "/env-store"
	t.Setenv(EnvStore, dir)
	resetDefaultForTest()
	s := Default()
	if s == nil || s.Root() != dir {
		t.Fatalf("Default() = %v, want store at %s", s, dir)
	}
	if Default() != s {
		t.Fatal("Default() not cached")
	}

	t.Setenv(EnvStore, "")
	resetDefaultForTest()
	if Default() != nil {
		t.Fatal("Default() without env not nil")
	}

	explicit := open(t)
	SetDefault(explicit)
	if Default() != explicit {
		t.Fatal("SetDefault ignored")
	}
}

func resetDefaultForTest() {
	defaultMu.Lock()
	defaultSet = false
	defaultStor = nil
	defaultMu.Unlock()
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("empty root accepted")
	}
	// A root path blocked by a regular file must fail loudly.
	f := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(filepath.Join(f, "sub")); err == nil {
		t.Fatal("root under a file accepted")
	}
}
