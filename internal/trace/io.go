package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"chaffmec/internal/geo"
)

// csvHeader is the column layout of the trace interchange format.
var csvHeader = []string{"node", "minute", "x", "y"}

// WriteCSV serialises records as CSV with a header row. The format is
// node,minute,x,y with positions in meters.
func WriteCSV(w io.Writer, records []Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	row := make([]string, 4)
	for i, r := range records {
		row[0] = r.Node
		row[1] = strconv.FormatFloat(r.Minute, 'f', -1, 64)
		row[2] = strconv.FormatFloat(r.Pos.X, 'f', -1, 64)
		row[3] = strconv.FormatFloat(r.Pos.Y, 'f', -1, 64)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: writing record %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses the CSV trace format produced by WriteCSV.
func ReadCSV(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	for i, want := range csvHeader {
		if header[i] != want {
			return nil, fmt.Errorf("trace: header column %d is %q, want %q", i, header[i], want)
		}
	}
	var out []Record
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		minute, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad minute %q: %w", line, row[1], err)
		}
		x, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad x %q: %w", line, row[2], err)
		}
		y, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad y %q: %w", line, row[3], err)
		}
		out = append(out, Record{Node: row[0], Minute: minute, Pos: geo.Point{X: x, Y: y}})
	}
	return out, nil
}
