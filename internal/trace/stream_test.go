package trace

import (
	"errors"
	"testing"

	"chaffmec/internal/geo"
	"chaffmec/internal/markov"
	"chaffmec/internal/rng"
)

// streamTestSet builds a fleet with a mix of active and inactive nodes.
func streamTestSet() *Set {
	r := rng.New(7)
	var recs []Record
	for n := 0; n < 6; n++ {
		node := string(rune('a' + n))
		if n%3 == 2 {
			// Inactive: a 7-minute mid-window silence.
			recs = append(recs,
				Record{Node: node, Minute: 0, Pos: geo.Point{X: float64(n)}},
				Record{Node: node, Minute: 9, Pos: geo.Point{X: float64(n)}},
			)
			continue
		}
		for m := 0; m < 10; m++ {
			recs = append(recs, Record{
				Node:   node,
				Minute: float64(m) + 0.3*r.Float64(),
				Pos:    geo.Point{X: r.Float64() * 100, Y: r.Float64() * 100},
			})
		}
	}
	return NewSet(recs)
}

// TestStreamRegularizeMatchesRegularizeSet: the streaming sweep must
// visit exactly the nodes RegularizeSet keeps, with identical points,
// despite reusing one buffer.
func TestStreamRegularizeMatchesRegularizeSet(t *testing.T) {
	s := streamTestSet()
	opts := regOpts(10)
	wantNodes, wantTracks, err := s.RegularizeSet(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantNodes) != 4 {
		t.Fatalf("test fleet kept %d nodes, want 4", len(wantNodes))
	}
	i := 0
	err = s.StreamRegularize(opts, func(node string, points []geo.Point) error {
		if node != wantNodes[i] {
			t.Fatalf("stream node %d = %s, want %s", i, node, wantNodes[i])
		}
		for tt, p := range points {
			if p != wantTracks[i][tt] {
				t.Fatalf("node %s slot %d: stream %v, set %v", node, tt, p, wantTracks[i][tt])
			}
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(wantNodes) {
		t.Fatalf("stream visited %d nodes, want %d", i, len(wantNodes))
	}
}

func TestStreamRegularizeAbortsOnCallbackError(t *testing.T) {
	boom := errors.New("stop")
	calls := 0
	err := streamTestSet().StreamRegularize(regOpts(10), func(string, []geo.Point) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 1 {
		t.Fatalf("callback ran %d times after error", calls)
	}
}

// TestChainEstimatorMatchesEstimateChain: incremental fitting must equal
// the one-shot fit bit for bit (same counts, same division order).
func TestChainEstimatorMatchesEstimateChain(t *testing.T) {
	r := rng.New(3)
	const numCells = 5
	trajs := make([]markov.Trajectory, 8)
	for i := range trajs {
		tr := make(markov.Trajectory, 20)
		for t := range tr {
			tr[t] = r.Intn(numCells - 1) // cell 4 never visited: self-loop row
		}
		trajs[i] = tr
	}
	want, err := EstimateChain(trajs, numCells)
	if err != nil {
		t.Fatal(err)
	}
	est, err := NewChainEstimator(numCells)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trajs {
		if err := est.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	if est.Added() != len(trajs) {
		t.Fatalf("Added = %d, want %d", est.Added(), len(trajs))
	}
	got, err := est.Chain()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < numCells; i++ {
		for j := 0; j < numCells; j++ {
			if got.Prob(i, j) != want.Prob(i, j) {
				t.Fatalf("P(%d|%d): estimator %v, one-shot %v", j, i, got.Prob(i, j), want.Prob(i, j))
			}
		}
	}
	gotPi, wantPi := got.MustSteadyState(), want.MustSteadyState()
	for i := range wantPi {
		if gotPi[i] != wantPi[i] {
			t.Fatalf("π[%d]: estimator %v, one-shot %v", i, gotPi[i], wantPi[i])
		}
	}
}

func TestChainEstimatorValidation(t *testing.T) {
	if _, err := NewChainEstimator(1); err == nil {
		t.Fatal("numCells=1 accepted")
	}
	est, err := NewChainEstimator(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := est.Add(markov.Trajectory{5}); err == nil {
		t.Fatal("out-of-range state accepted")
	}
	if _, err := est.Chain(); err == nil {
		t.Fatal("empty estimator fitted")
	}
}
