// Package trace implements the mobility-trace pipeline of Section VII-B:
// raw position reports with irregular intervals are filtered for inactive
// nodes (no update for 5 minutes), regularised onto a fixed slot grid by
// linear interpolation, quantised into Voronoi cells, and fitted into an
// empirical Markov chain (transition matrix + empirical steady state)
// shared by all nodes.
package trace

import (
	"errors"
	"fmt"
	"sort"

	"chaffmec/internal/geo"
	"chaffmec/internal/markov"
)

// Record is one raw position report.
type Record struct {
	// Node identifies the reporting node (taxi).
	Node string
	// Minute is the report time in minutes from the observation start.
	Minute float64
	// Pos is the reported position.
	Pos geo.Point
}

// Set groups raw records by node, each node's records sorted by time.
type Set struct {
	nodes   []string
	records map[string][]Record
}

// NewSet groups and time-sorts raw records.
func NewSet(records []Record) *Set {
	byNode := make(map[string][]Record)
	for _, r := range records {
		byNode[r.Node] = append(byNode[r.Node], r)
	}
	nodes := make([]string, 0, len(byNode))
	for n := range byNode {
		nodes = append(nodes, n)
		sort.Slice(byNode[n], func(i, j int) bool { return byNode[n][i].Minute < byNode[n][j].Minute })
	}
	sort.Strings(nodes)
	return &Set{nodes: nodes, records: byNode}
}

// Nodes returns the node ids in deterministic (sorted) order.
func (s *Set) Nodes() []string { return append([]string(nil), s.nodes...) }

// Records returns the time-sorted records of one node.
func (s *Set) Records(node string) []Record {
	return append([]Record(nil), s.records[node]...)
}

// Len returns the number of nodes.
func (s *Set) Len() int { return len(s.nodes) }

// RegularizeOptions controls the resampling of Section VII-B.1.
type RegularizeOptions struct {
	// StartMinute and Slots define the output grid: slot t corresponds to
	// time StartMinute + t·IntervalMin.
	StartMinute float64
	Slots       int
	// IntervalMin is the slot length in minutes (the paper uses 1).
	IntervalMin float64
	// MaxGapMin marks a node inactive when two consecutive reports (or
	// the window edges) are further apart (the paper uses 5).
	MaxGapMin float64
}

func (o RegularizeOptions) validate() error {
	switch {
	case o.Slots < 1:
		return fmt.Errorf("trace: Slots %d must be >= 1", o.Slots)
	case o.IntervalMin <= 0:
		return fmt.Errorf("trace: IntervalMin %v must be positive", o.IntervalMin)
	case o.MaxGapMin <= 0:
		return fmt.Errorf("trace: MaxGapMin %v must be positive", o.MaxGapMin)
	}
	return nil
}

// Regularize resamples one node's reports onto the slot grid with linear
// interpolation. ok is false when the node is inactive in the window:
// it has no report within MaxGapMin of the window start or end, or two
// consecutive reports straddling the window are more than MaxGapMin apart.
func Regularize(records []Record, opts RegularizeOptions) (points []geo.Point, ok bool, err error) {
	return regularizeInto(records, opts, nil)
}

// regularizeInto is Regularize with a caller-owned output buffer (grown
// as needed, reused when large enough) — the streaming pipeline's way of
// resampling a whole fleet through one allocation.
func regularizeInto(records []Record, opts RegularizeOptions, buf []geo.Point) (points []geo.Point, ok bool, err error) {
	if err := opts.validate(); err != nil {
		return nil, false, err
	}
	if len(records) == 0 {
		return nil, false, nil
	}
	end := opts.StartMinute + float64(opts.Slots-1)*opts.IntervalMin
	// Gap scan across the window, including the edges.
	prev := opts.StartMinute - opts.MaxGapMin // sentinel: edge allowance
	idxFirst := -1
	for i, r := range records {
		if r.Minute < opts.StartMinute-opts.MaxGapMin || r.Minute > end+opts.MaxGapMin {
			continue
		}
		if idxFirst < 0 {
			idxFirst = i
			if r.Minute-opts.StartMinute > opts.MaxGapMin {
				return nil, false, nil // silent at the window start
			}
		} else if r.Minute-prev > opts.MaxGapMin && prev < end {
			return nil, false, nil // mid-window silence
		}
		prev = r.Minute
	}
	if idxFirst < 0 || end-prev > opts.MaxGapMin {
		return nil, false, nil // no usable reports / silent at the end
	}

	if cap(buf) < opts.Slots {
		buf = make([]geo.Point, opts.Slots)
	}
	points = buf[:opts.Slots]
	j := 0
	for t := 0; t < opts.Slots; t++ {
		at := opts.StartMinute + float64(t)*opts.IntervalMin
		for j+1 < len(records) && records[j+1].Minute <= at {
			j++
		}
		switch {
		case records[j].Minute >= at:
			// Before (or exactly at) the first report: clamp.
			points[t] = records[j].Pos
		case j+1 >= len(records):
			// After the last report: clamp.
			points[t] = records[j].Pos
		default:
			a, b := records[j], records[j+1]
			span := b.Minute - a.Minute
			if span <= 0 {
				points[t] = b.Pos
			} else {
				points[t] = geo.Lerp(a.Pos, b.Pos, (at-a.Minute)/span)
			}
		}
	}
	return points, true, nil
}

// StreamRegularize resamples every node onto the slot grid and hands
// each ACTIVE node's points to fn in node order, reusing one internal
// point buffer across nodes: points is only valid during the call, so fn
// must consume (quantise, copy) it before returning. This is how the
// trace-lab build streams a whole fleet through the pipeline without
// materializing every raw track at once. A non-nil error from fn aborts
// the sweep.
func (s *Set) StreamRegularize(opts RegularizeOptions, fn func(node string, points []geo.Point) error) error {
	var buf []geo.Point
	for _, n := range s.nodes {
		pts, ok, err := regularizeInto(s.records[n], opts, buf)
		if err != nil {
			return fmt.Errorf("trace: node %s: %w", n, err)
		}
		if !ok {
			continue
		}
		buf = pts
		if err := fn(n, pts); err != nil {
			return err
		}
	}
	return nil
}

// RegularizeSet applies Regularize to every node and keeps the active
// ones, returning their resampled position sequences in node order.
func (s *Set) RegularizeSet(opts RegularizeOptions) (nodes []string, tracks [][]geo.Point, err error) {
	err = s.StreamRegularize(opts, func(n string, pts []geo.Point) error {
		nodes = append(nodes, n)
		tracks = append(tracks, append([]geo.Point(nil), pts...))
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return nodes, tracks, nil
}

// QuantizeTracks maps resampled position tracks into cell trajectories.
func QuantizeTracks(tracks [][]geo.Point, q *geo.Quantizer) []markov.Trajectory {
	out := make([]markov.Trajectory, len(tracks))
	for i, pts := range tracks {
		out[i] = markov.Trajectory(q.QuantizeAll(pts))
	}
	return out
}

// ChainEstimator fits the empirical mobility model of Section VII-B.1
// incrementally: trajectories are Add-ed one at a time (the streaming
// counterpart of EstimateChain, used by the trace-lab build to fold the
// fleet in without holding every trajectory's counts twice). Counts live
// in one flat row-major array, matching the flat layout the fitted chain
// itself uses.
type ChainEstimator struct {
	n      int
	counts []float64 // from*n+to → pooled transition counts
	visits []float64
	total  float64
	added  int
}

// NewChainEstimator returns an empty estimator over numCells cells.
func NewChainEstimator(numCells int) (*ChainEstimator, error) {
	if numCells < 2 {
		return nil, fmt.Errorf("trace: numCells %d must be >= 2", numCells)
	}
	return &ChainEstimator{
		n:      numCells,
		counts: make([]float64, numCells*numCells),
		visits: make([]float64, numCells),
	}, nil
}

// Add folds one trajectory's visit and transition counts in.
func (e *ChainEstimator) Add(tr markov.Trajectory) error {
	if err := tr.Validate(e.n); err != nil {
		return err
	}
	for t, s := range tr {
		e.visits[s]++
		e.total++
		if t > 0 {
			e.counts[tr[t-1]*e.n+s]++
		}
	}
	e.added++
	return nil
}

// Added returns the number of trajectories folded in so far.
func (e *ChainEstimator) Added() int { return e.added }

// Chain builds the estimated chain: pooled transition counts
// row-normalised, empirical visit frequencies as the stationary
// distribution, and a self-loop for states never left. Bit-identical to
// EstimateChain over the same trajectories in the same order.
func (e *ChainEstimator) Chain() (*markov.Chain, error) {
	if e.added == 0 {
		return nil, errors.New("trace: no trajectories to fit")
	}
	if e.total == 0 {
		return nil, errors.New("trace: empty trajectories")
	}
	p := make([][]float64, e.n)
	for i := range p {
		cRow := e.counts[i*e.n : (i+1)*e.n]
		rowSum := 0.0
		for _, v := range cRow {
			rowSum += v
		}
		row := make([]float64, e.n)
		if rowSum == 0 {
			row[i] = 1 // never-left state: self-loop
		} else {
			for j, v := range cRow {
				row[j] = v / rowSum
			}
		}
		p[i] = row
	}
	pi := make([]float64, e.n)
	for i, v := range e.visits {
		pi[i] = v / e.total
	}
	return markov.NewWithStationary(p, pi)
}

// EstimateChain fits the empirical mobility model of Section VII-B.1:
// transition counts pooled over all trajectories (they are modeled as
// independent samples of one chain), row-normalised, with the empirical
// visit frequencies as the stationary distribution. States never left get
// a self-loop. numCells fixes the state space (cells with no visits keep
// zero stationary mass). It is the one-shot wrapper over ChainEstimator.
func EstimateChain(trajs []markov.Trajectory, numCells int) (*markov.Chain, error) {
	if len(trajs) == 0 {
		return nil, errors.New("trace: no trajectories to fit")
	}
	est, err := NewChainEstimator(numCells)
	if err != nil {
		return nil, err
	}
	for _, tr := range trajs {
		if err := est.Add(tr); err != nil {
			return nil, err
		}
	}
	return est.Chain()
}
