package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"chaffmec/internal/geo"
	"chaffmec/internal/markov"
)

func regOpts(slots int) RegularizeOptions {
	return RegularizeOptions{StartMinute: 0, Slots: slots, IntervalMin: 1, MaxGapMin: 5}
}

func TestRegularizeExactOnRegularTrace(t *testing.T) {
	var recs []Record
	for m := 0; m < 10; m++ {
		recs = append(recs, Record{Node: "a", Minute: float64(m), Pos: geo.Point{X: float64(m) * 100, Y: 0}})
	}
	pts, ok, err := Regularize(recs, regOpts(10))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("regular trace marked inactive")
	}
	for m, p := range pts {
		if p.X != float64(m)*100 || p.Y != 0 {
			t.Fatalf("slot %d: %v", m, p)
		}
	}
}

func TestRegularizeInterpolates(t *testing.T) {
	recs := []Record{
		{Node: "a", Minute: 0, Pos: geo.Point{X: 0, Y: 0}},
		{Node: "a", Minute: 4, Pos: geo.Point{X: 400, Y: 0}},
	}
	pts, ok, err := Regularize(recs, regOpts(5))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("trace marked inactive")
	}
	for m := 0; m < 5; m++ {
		if math.Abs(pts[m].X-float64(m)*100) > 1e-9 {
			t.Fatalf("slot %d interpolated to %v, want %v", m, pts[m].X, float64(m)*100)
		}
	}
}

func TestRegularizeDetectsInactivity(t *testing.T) {
	tests := []struct {
		name string
		recs []Record
	}{
		{"empty", nil},
		{"gap in middle", []Record{
			{Node: "a", Minute: 0, Pos: geo.Point{}},
			{Node: "a", Minute: 2, Pos: geo.Point{}},
			{Node: "a", Minute: 9, Pos: geo.Point{}}, // 7-minute silence
		}},
		{"silent at start", []Record{
			{Node: "a", Minute: 7, Pos: geo.Point{}},
			{Node: "a", Minute: 9, Pos: geo.Point{}},
		}},
		{"silent at end", []Record{
			{Node: "a", Minute: 0, Pos: geo.Point{}},
			{Node: "a", Minute: 3, Pos: geo.Point{}},
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, ok, err := Regularize(tc.recs, regOpts(10))
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				t.Fatal("inactive trace accepted")
			}
		})
	}
}

func TestRegularizeValidation(t *testing.T) {
	recs := []Record{{Node: "a", Minute: 0, Pos: geo.Point{}}}
	for _, bad := range []RegularizeOptions{
		{Slots: 0, IntervalMin: 1, MaxGapMin: 5},
		{Slots: 5, IntervalMin: 0, MaxGapMin: 5},
		{Slots: 5, IntervalMin: 1, MaxGapMin: 0},
	} {
		if _, _, err := Regularize(recs, bad); err == nil {
			t.Fatalf("options %+v accepted", bad)
		}
	}
}

func TestSetGroupsAndSorts(t *testing.T) {
	recs := []Record{
		{Node: "b", Minute: 5, Pos: geo.Point{}},
		{Node: "a", Minute: 3, Pos: geo.Point{}},
		{Node: "b", Minute: 1, Pos: geo.Point{}},
	}
	s := NewSet(recs)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	nodes := s.Nodes()
	if nodes[0] != "a" || nodes[1] != "b" {
		t.Fatalf("Nodes = %v", nodes)
	}
	b := s.Records("b")
	if len(b) != 2 || b[0].Minute != 1 || b[1].Minute != 5 {
		t.Fatalf("Records(b) = %v", b)
	}
}

func TestRegularizeSetFilters(t *testing.T) {
	var recs []Record
	for m := 0; m < 10; m++ {
		recs = append(recs, Record{Node: "active", Minute: float64(m), Pos: geo.Point{X: float64(m)}})
	}
	recs = append(recs,
		Record{Node: "inactive", Minute: 0, Pos: geo.Point{}},
		Record{Node: "inactive", Minute: 9, Pos: geo.Point{}},
	)
	nodes, tracks, err := NewSet(recs).RegularizeSet(regOpts(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 || nodes[0] != "active" || len(tracks) != 1 {
		t.Fatalf("kept %v", nodes)
	}
}

func TestEstimateChain(t *testing.T) {
	trajs := []markov.Trajectory{
		{0, 1, 0, 1},
		{1, 0, 1, 0},
	}
	c, err := EstimateChain(trajs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Prob(0, 1); got != 1 {
		t.Fatalf("P(1|0) = %v, want 1", got)
	}
	if got := c.Prob(1, 0); got != 1 {
		t.Fatalf("P(0|1) = %v, want 1", got)
	}
	// Unvisited state 2 self-loops.
	if got := c.Prob(2, 2); got != 1 {
		t.Fatalf("P(2|2) = %v, want 1", got)
	}
	pi := c.MustSteadyState()
	if pi[0] != 0.5 || pi[1] != 0.5 || pi[2] != 0 {
		t.Fatalf("empirical π = %v", pi)
	}
}

func TestEstimateChainValidation(t *testing.T) {
	if _, err := EstimateChain(nil, 3); err == nil {
		t.Fatal("no trajectories accepted")
	}
	if _, err := EstimateChain([]markov.Trajectory{{0}}, 1); err == nil {
		t.Fatal("numCells=1 accepted")
	}
	if _, err := EstimateChain([]markov.Trajectory{{5}}, 3); err == nil {
		t.Fatal("out-of-range state accepted")
	}
}

func TestQuantizeTracks(t *testing.T) {
	q, err := geo.NewQuantizer([]geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}})
	if err != nil {
		t.Fatal(err)
	}
	tracks := [][]geo.Point{{{X: 10, Y: 0}, {X: 90, Y: 0}}}
	trajs := QuantizeTracks(tracks, q)
	if len(trajs) != 1 || trajs[0][0] != 0 || trajs[0][1] != 1 {
		t.Fatalf("trajs = %v", trajs)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	recs := []Record{
		{Node: "cab1", Minute: 0.5, Pos: geo.Point{X: 1.25, Y: -3}},
		{Node: "cab2", Minute: 10, Pos: geo.Point{X: 0, Y: 42}},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip length %d", len(got))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"a,b,c,d\n",
		"node,minute,x,y\ncab,notanumber,0,0\n",
		"node,minute,x,y\ncab,1,zz,0\n",
		"node,minute,x,y\ncab,1,0,zz\n",
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}
