// Package tracegen generates synthetic taxi mobility traces, substituting
// for the CRAWDAD epfl/mobility dataset the paper uses in Section VII-B
// (paper Section VII-B). The generator reproduces the dataset properties the
// evaluation actually depends on: a fleet of nodes moving between
// hotspot-biased waypoints over an SF-sized region, reporting positions at
// irregular ≈1-minute intervals, with occasional multi-minute silences
// that the trace pipeline must filter out, and heterogeneous per-node
// predictability (some nodes idle at hotspots, some roam), which is what
// makes a subset of users highly trackable in Fig. 9(a).
package tracegen

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"

	"chaffmec/internal/geo"
	"chaffmec/internal/trace"
)

// Config parameterises the fleet.
type Config struct {
	// Nodes is the fleet size (the paper extracts 174 nodes).
	Nodes int
	// DurationMin is the observation window in minutes (the paper uses
	// 100 one-minute slots).
	DurationMin float64
	// Bounds is the service region in meters; the default approximates
	// the SF bay-area box of the dataset (~45 km × 40 km).
	Bounds geo.Rect
	// Hotspots is the number of demand attractors (downtown, airport, …).
	Hotspots int
	// HotspotBias is the probability a new trip targets a hotspot
	// neighbourhood rather than a uniform point.
	HotspotBias float64
	// HotspotSpread is the Gaussian σ (meters) of destinations around a
	// hotspot.
	HotspotSpread float64
	// MeanSpeed is the cruise speed in meters/minute (500 ≈ 30 km/h).
	MeanSpeed float64
	// SpeedJitter is the per-trip multiplicative speed noise (0..1).
	SpeedJitter float64
	// PauseMeanMin is the mean idle time between trips, minutes.
	PauseMeanMin float64
	// IdlerFraction of nodes mostly linger near one hotspot — these are
	// the highly predictable users the eavesdropper tracks best.
	IdlerFraction float64
	// ReportMeanMin is the mean spacing of position reports (≈1 minute),
	// jittered ±50%.
	ReportMeanMin float64
	// DropoutProb is the chance, per trip, that the node goes silent for
	// longer than the pipeline's 5-minute activity threshold.
	DropoutProb float64
	// DropoutMin is the silence duration in minutes when a dropout occurs.
	DropoutMin float64
}

// DefaultConfig mirrors the paper's extraction: 174 nodes over 100 minutes.
func DefaultConfig() Config {
	return Config{
		Nodes:         174,
		DurationMin:   100,
		Bounds:        geo.Rect{MinX: 0, MinY: 0, MaxX: 45000, MaxY: 40000},
		Hotspots:      8,
		HotspotBias:   0.7,
		HotspotSpread: 900,
		MeanSpeed:     500,
		SpeedJitter:   0.35,
		PauseMeanMin:  3,
		IdlerFraction: 0.15,
		ReportMeanMin: 1,
		DropoutProb:   0.05,
		DropoutMin:    7,
	}
}

func (c Config) validate() error {
	switch {
	case c.Nodes < 1:
		return fmt.Errorf("tracegen: Nodes %d must be >= 1", c.Nodes)
	case c.DurationMin <= 0:
		return errors.New("tracegen: DurationMin must be positive")
	case !c.Bounds.Valid():
		return errors.New("tracegen: invalid bounds")
	case c.Hotspots < 1:
		return errors.New("tracegen: need at least one hotspot")
	case c.HotspotBias < 0 || c.HotspotBias > 1:
		return errors.New("tracegen: HotspotBias outside [0,1]")
	case c.MeanSpeed <= 0:
		return errors.New("tracegen: MeanSpeed must be positive")
	case c.SpeedJitter < 0 || c.SpeedJitter >= 1:
		return errors.New("tracegen: SpeedJitter outside [0,1)")
	case c.ReportMeanMin <= 0:
		return errors.New("tracegen: ReportMeanMin must be positive")
	case c.DropoutProb < 0 || c.DropoutProb > 1:
		return errors.New("tracegen: DropoutProb outside [0,1]")
	case c.IdlerFraction < 0 || c.IdlerFraction > 1:
		return errors.New("tracegen: IdlerFraction outside [0,1]")
	}
	return nil
}

// Generate produces the raw report stream for the whole fleet, plus the
// hotspot locations (useful for building a matching tower field).
func Generate(rng *rand.Rand, cfg Config) ([]trace.Record, []geo.Point, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	hotspots := make([]geo.Point, cfg.Hotspots)
	for i := range hotspots {
		hotspots[i] = cfg.Bounds.RandomPoint(rng)
	}
	var records []trace.Record
	for n := 0; n < cfg.Nodes; n++ {
		id := "cab" + strconv.Itoa(n)
		idler := rng.Float64() < cfg.IdlerFraction
		home := hotspots[rng.Intn(len(hotspots))]
		recs := simulateNode(rng, cfg, id, hotspots, home, idler)
		records = append(records, recs...)
	}
	return records, hotspots, nil
}

// simulateNode runs one node's trip process over the window and emits its
// irregular position reports.
func simulateNode(rng *rand.Rand, cfg Config, id string, hotspots []geo.Point, home geo.Point, idler bool) []trace.Record {
	pos := cfg.Bounds.Clamp(geo.Point{
		X: home.X + rng.NormFloat64()*cfg.HotspotSpread,
		Y: home.Y + rng.NormFloat64()*cfg.HotspotSpread,
	})
	var recs []trace.Record
	now := 0.0
	nextReport := rng.Float64() * cfg.ReportMeanMin
	silentUntil := -1.0

	report := func(at float64, p geo.Point) {
		if at <= silentUntil {
			return
		}
		recs = append(recs, trace.Record{Node: id, Minute: at, Pos: p})
	}

	for now < cfg.DurationMin {
		// Choose the next destination.
		var dest geo.Point
		if idler {
			// Idlers shuttle within their home hotspot's neighbourhood —
			// wide enough to cross a few Voronoi cells (≈1.5 cell pitches),
			// so they are highly predictable without their trajectory
			// collapsing onto the single globally-most-likely cell (where
			// the ML chaff would co-locate with them, Eq. 12's caveat).
			dest = geo.Point{
				X: home.X + rng.NormFloat64()*cfg.HotspotSpread*1.6,
				Y: home.Y + rng.NormFloat64()*cfg.HotspotSpread*1.6,
			}
		} else if rng.Float64() < cfg.HotspotBias {
			h := hotspots[rng.Intn(len(hotspots))]
			dest = geo.Point{
				X: h.X + rng.NormFloat64()*cfg.HotspotSpread,
				Y: h.Y + rng.NormFloat64()*cfg.HotspotSpread,
			}
		} else {
			dest = cfg.Bounds.RandomPoint(rng)
		}
		dest = cfg.Bounds.Clamp(dest)

		if rng.Float64() < cfg.DropoutProb {
			silentUntil = now + cfg.DropoutMin
		}

		speed := cfg.MeanSpeed * (1 + cfg.SpeedJitter*(2*rng.Float64()-1))
		dist := geo.Dist(pos, dest)
		arrive := now + dist/speed
		// Emit reports along the leg.
		for nextReport < arrive && nextReport < cfg.DurationMin {
			frac := 0.0
			if arrive > now {
				frac = (nextReport - now) / (arrive - now)
			}
			report(nextReport, geo.Lerp(pos, dest, frac))
			nextReport += cfg.ReportMeanMin * (0.5 + rng.Float64())
		}
		now = arrive
		pos = dest
		// Pause at the destination.
		pause := cfg.PauseMeanMin * rng.ExpFloat64()
		if idler {
			pause *= 3 // idlers dwell
		}
		pauseEnd := now + pause
		for nextReport < pauseEnd && nextReport < cfg.DurationMin {
			report(nextReport, pos)
			nextReport += cfg.ReportMeanMin * (0.5 + rng.Float64())
		}
		now = pauseEnd
	}
	return recs
}
