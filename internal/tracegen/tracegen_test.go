package tracegen

import (
	"testing"

	"chaffmec/internal/rng"
	"chaffmec/internal/trace"
)

func TestGenerateDefaults(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 40 // keep the test fast
	recs, hotspots, err := Generate(rng.New(1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(hotspots) != cfg.Hotspots {
		t.Fatalf("hotspots = %d", len(hotspots))
	}
	if len(recs) == 0 {
		t.Fatal("no records generated")
	}
	set := trace.NewSet(recs)
	if set.Len() == 0 || set.Len() > cfg.Nodes {
		t.Fatalf("nodes in set = %d", set.Len())
	}
	for _, r := range recs {
		if r.Minute < 0 || r.Minute > cfg.DurationMin {
			t.Fatalf("record at minute %v outside window", r.Minute)
		}
		if !cfg.Bounds.Contains(r.Pos) {
			t.Fatalf("record outside bounds: %v", r.Pos)
		}
	}
}

func TestGenerateReproducible(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 10
	a, _, err := Generate(rng.New(5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Generate(rng.New(5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestGenerateProducesActiveAndInactiveNodes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 120
	cfg.DropoutProb = 0.10
	recs, _, err := Generate(rng.New(11), cfg)
	if err != nil {
		t.Fatal(err)
	}
	set := trace.NewSet(recs)
	opts := trace.RegularizeOptions{StartMinute: 0, Slots: int(cfg.DurationMin), IntervalMin: 1, MaxGapMin: 5}
	nodes, _, err := set.RegularizeSet(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) == 0 {
		t.Fatal("every node filtered out")
	}
	if len(nodes) == set.Len() {
		t.Fatal("dropout produced no inactive nodes — filtering path unexercised")
	}
}

func TestGenerateHeterogeneousPredictability(t *testing.T) {
	// Idlers dwell near one hotspot; roamers cover the region. The spread
	// of per-node position variance should be wide.
	cfg := DefaultConfig()
	cfg.Nodes = 60
	cfg.IdlerFraction = 0.3
	recs, _, err := Generate(rng.New(21), cfg)
	if err != nil {
		t.Fatal(err)
	}
	set := trace.NewSet(recs)
	var spreads []float64
	for _, n := range set.Nodes() {
		rs := set.Records(n)
		if len(rs) < 10 {
			continue
		}
		// Bounding-box diagonal as a cheap roaming measure.
		minX, maxX := rs[0].Pos.X, rs[0].Pos.X
		minY, maxY := rs[0].Pos.Y, rs[0].Pos.Y
		for _, r := range rs {
			if r.Pos.X < minX {
				minX = r.Pos.X
			}
			if r.Pos.X > maxX {
				maxX = r.Pos.X
			}
			if r.Pos.Y < minY {
				minY = r.Pos.Y
			}
			if r.Pos.Y > maxY {
				maxY = r.Pos.Y
			}
		}
		spreads = append(spreads, (maxX-minX)+(maxY-minY))
	}
	if len(spreads) < 20 {
		t.Fatalf("too few usable nodes: %d", len(spreads))
	}
	lo, hi := spreads[0], spreads[0]
	for _, s := range spreads {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	if hi < 5*lo+1 {
		t.Fatalf("no predictability heterogeneity: spreads in [%v, %v]", lo, hi)
	}
}

func TestGenerateValidation(t *testing.T) {
	rng := rng.New(1)
	bad := DefaultConfig()
	bad.Nodes = 0
	if _, _, err := Generate(rng, bad); err == nil {
		t.Fatal("Nodes=0 accepted")
	}
	bad = DefaultConfig()
	bad.MeanSpeed = 0
	if _, _, err := Generate(rng, bad); err == nil {
		t.Fatal("MeanSpeed=0 accepted")
	}
	bad = DefaultConfig()
	bad.HotspotBias = 2
	if _, _, err := Generate(rng, bad); err == nil {
		t.Fatal("HotspotBias=2 accepted")
	}
}
