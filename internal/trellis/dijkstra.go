package trellis

import (
	"container/heap"
	"fmt"
	"math"

	"chaffmec/internal/markov"
)

// pqItem is a priority-queue entry for Dijkstra over the trellis.
type pqItem struct {
	slot, cell int
	dist       float64
	index      int
}

type priorityQueue []*pqItem

func (pq priorityQueue) Len() int { return len(pq) }
func (pq priorityQueue) Less(i, j int) bool {
	if pq[i].dist != pq[j].dist {
		return pq[i].dist < pq[j].dist
	}
	// Deterministic order for equal distances.
	if pq[i].slot != pq[j].slot {
		return pq[i].slot < pq[j].slot
	}
	return pq[i].cell < pq[j].cell
}
func (pq priorityQueue) Swap(i, j int) {
	pq[i], pq[j] = pq[j], pq[i]
	pq[i].index, pq[j].index = i, j
}
func (pq *priorityQueue) Push(x any) {
	it := x.(*pqItem)
	it.index = len(*pq)
	*pq = append(*pq, it)
}
func (pq *priorityQueue) Pop() any {
	old := *pq
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*pq = old[:n-1]
	return it
}

// MLTrajectoryDijkstra computes the same maximum-likelihood trajectory as
// MLTrajectory by running Dijkstra's algorithm on the Fig. 2 graph with
// edge costs −log π(x) (source edges) and −log P(x′|x) (layer edges); all
// costs are non-negative so Dijkstra applies, as the paper notes. It is
// provided for fidelity with Section IV-B and as a cross-check of the DP;
// complexity O(T·L² log(TL)).
func MLTrajectoryDijkstra(c *markov.Chain, T int, excl *ExclusionSet) (markov.Trajectory, float64, error) {
	if T <= 0 {
		return nil, 0, fmt.Errorf("trellis: horizon %d must be positive", T)
	}
	pi, err := c.SteadyState()
	if err != nil {
		return nil, 0, err
	}
	L := c.NumStates()
	inf := math.Inf(1)
	dist := make([][]float64, T)
	prev := make([][]int32, T)
	done := make([][]bool, T)
	for t := 0; t < T; t++ {
		dist[t] = make([]float64, L)
		prev[t] = make([]int32, L)
		done[t] = make([]bool, L)
		for x := 0; x < L; x++ {
			dist[t][x] = inf
			prev[t][x] = -1
		}
	}
	pq := &priorityQueue{}
	heap.Init(pq)
	for x := 0; x < L; x++ {
		if excl.Excluded(x, 0) || pi[x] <= 0 {
			continue
		}
		dist[0][x] = -math.Log(pi[x])
		heap.Push(pq, &pqItem{slot: 0, cell: x, dist: dist[0][x]})
	}
	bestEnd, bestCost := -1, inf
	for pq.Len() > 0 {
		it := heap.Pop(pq).(*pqItem)
		if done[it.slot][it.cell] || it.dist > dist[it.slot][it.cell] {
			continue
		}
		done[it.slot][it.cell] = true
		if it.slot == T-1 {
			// First settled vertex in the last layer is the optimum end.
			bestEnd, bestCost = it.cell, it.dist
			break
		}
		t := it.slot + 1
		for _, x := range c.Successors(it.cell) {
			if excl.Excluded(x, t) {
				continue
			}
			nd := it.dist - c.LogProb(it.cell, x)
			if nd < dist[t][x] || (nd == dist[t][x] && int32(it.cell) < prev[t][x] && prev[t][x] >= 0) {
				dist[t][x] = nd
				prev[t][x] = int32(it.cell)
				heap.Push(pq, &pqItem{slot: t, cell: x, dist: nd})
			}
		}
	}
	if bestEnd < 0 {
		return nil, 0, fmt.Errorf("trellis: length-%d trajectory: %w", T, ErrInfeasible)
	}
	tr := make(markov.Trajectory, T)
	tr[T-1] = bestEnd
	for t := T - 1; t > 0; t-- {
		tr[t-1] = int(prev[t][tr[t]])
	}
	return tr, -bestCost, nil
}
