// Package trellis implements the auxiliary layered graph of Fig. 2 of the
// paper: vertices are (slot, cell) pairs, edge costs are negative
// log-probabilities, and the maximum-likelihood trajectory of length T is
// the shortest path from the virtual source to the virtual sink. Both an
// exact layered dynamic program (Viterbi) and Dijkstra's algorithm (the
// paper's description, Section IV-B) are provided; they agree and the DP
// is the default since the graph is a layered DAG.
package trellis

import (
	"errors"
	"fmt"
	"math"

	"chaffmec/internal/markov"
)

// ErrInfeasible reports that the exclusions leave no trajectory of the
// requested length. Small chains with many chaffs can over-constrain
// the trellis legitimately; callers that retry or skip such draws test
// for it with errors.Is.
var ErrInfeasible = errors.New("no feasible trajectory under exclusions")

// ExclusionSet marks (cell, slot) pairs a trajectory must avoid, as used by
// the robust RML/ROO strategies (Section VI-B). Slots are 0-indexed.
type ExclusionSet struct {
	bySlot map[int]map[int]bool
}

// NewExclusionSet returns an empty set.
func NewExclusionSet() *ExclusionSet {
	return &ExclusionSet{bySlot: make(map[int]map[int]bool)}
}

// Add marks (cell, slot) as forbidden.
func (e *ExclusionSet) Add(cell, slot int) {
	m, ok := e.bySlot[slot]
	if !ok {
		m = make(map[int]bool)
		e.bySlot[slot] = m
	}
	m[cell] = true
}

// Excluded reports whether (cell, slot) is forbidden. A nil receiver
// excludes nothing, so callers can pass nil for the unconstrained case.
func (e *ExclusionSet) Excluded(cell, slot int) bool {
	if e == nil {
		return false
	}
	return e.bySlot[slot][cell]
}

// Len returns the number of excluded pairs.
func (e *ExclusionSet) Len() int {
	if e == nil {
		return 0
	}
	n := 0
	for _, m := range e.bySlot {
		n += len(m)
	}
	return n
}

// MLTrajectory returns the trajectory of length T with the maximum
// log-likelihood log π(x₁) + Σ log P(x_t|x_{t−1}) (Eq. 2/3), together with
// that log-likelihood. Ties break toward lower cell indices at every
// layer, making the result deterministic. excl may be nil.
func MLTrajectory(c *markov.Chain, T int, excl *ExclusionSet) (markov.Trajectory, float64, error) {
	if T <= 0 {
		return nil, 0, fmt.Errorf("trellis: horizon %d must be positive", T)
	}
	pi, err := c.SteadyState()
	if err != nil {
		return nil, 0, err
	}
	L := c.NumStates()
	negInf := math.Inf(-1)

	best := make([]float64, L) // best log-likelihood ending at each cell
	next := make([]float64, L) // scratch for the next layer
	back := make([][]int32, T) // back[t][x] = predecessor of x at slot t
	for t := range back {
		back[t] = make([]int32, L)
	}
	for x := 0; x < L; x++ {
		if excl.Excluded(x, 0) || pi[x] <= 0 {
			best[x] = negInf
		} else {
			best[x] = math.Log(pi[x])
		}
		back[0][x] = -1
	}
	for t := 1; t < T; t++ {
		for x := 0; x < L; x++ {
			next[x] = negInf
			back[t][x] = -1
		}
		for prev := 0; prev < L; prev++ {
			if best[prev] == negInf {
				continue
			}
			for _, x := range c.Successors(prev) {
				if excl.Excluded(x, t) {
					continue
				}
				// Strict improvement + increasing prev order = lowest
				// predecessor index wins ties.
				if v := best[prev] + c.LogProb(prev, x); v > next[x] {
					next[x] = v
					back[t][x] = int32(prev)
				}
			}
		}
		best, next = next, best
	}
	// Terminal: lowest cell index among maxima.
	end, endLL := -1, negInf
	for x := 0; x < L; x++ {
		if best[x] > endLL {
			end, endLL = x, best[x]
		}
	}
	if end < 0 {
		return nil, 0, fmt.Errorf("trellis: length-%d trajectory: %w", T, ErrInfeasible)
	}
	tr := make(markov.Trajectory, T)
	tr[T-1] = end
	for t := T - 1; t > 0; t-- {
		tr[t-1] = int(back[t][tr[t]])
	}
	return tr, endLL, nil
}
