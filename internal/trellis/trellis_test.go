package trellis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"chaffmec/internal/markov"
	"chaffmec/internal/rng"
)

func randomChain(rng *rand.Rand, n int) *markov.Chain {
	p := make([][]float64, n)
	for i := range p {
		row := make([]float64, n)
		sum := 0.0
		for j := range row {
			row[j] = rng.Float64() + 1e-9
			sum += row[j]
		}
		for j := range row {
			row[j] /= sum
		}
		p[i] = row
	}
	return markov.MustNew(p)
}

func TestMLTrajectoryDominantState(t *testing.T) {
	// State 1 strongly attracts and holds; the ML trajectory should park
	// there.
	c := markov.MustNew([][]float64{
		{0.1, 0.8, 0.1},
		{0.05, 0.9, 0.05},
		{0.1, 0.8, 0.1},
	})
	tr, ll, err := MLTrajectory(c, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	for slot, x := range tr {
		if x != 1 {
			t.Fatalf("slot %d = %d, want 1 (dominant state); trajectory %v", slot, x, tr)
		}
	}
	want, err := c.LogLikelihood(tr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ll-want) > 1e-9 {
		t.Fatalf("reported LL %v != recomputed %v", ll, want)
	}
}

func TestMLTrajectoryBeatsSamples(t *testing.T) {
	outer := rng.New(17)
	f := func(seed int64) bool {
		r := rng.New(seed)
		c := randomChain(r, 2+r.Intn(8))
		T := 1 + r.Intn(30)
		ml, mlLL, err := MLTrajectory(c, T, nil)
		if err != nil || len(ml) != T {
			return false
		}
		for k := 0; k < 10; k++ {
			tr, err := c.Sample(outer, T)
			if err != nil {
				return false
			}
			ll, err := c.LogLikelihood(tr)
			if err != nil {
				return false
			}
			if ll > mlLL+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMLTrajectoryAgreesWithDijkstra(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		r := rng.New(seed)
		c := randomChain(r, 2+r.Intn(8))
		T := 1 + r.Intn(25)
		_, llDP, err := MLTrajectory(c, T, nil)
		if err != nil {
			t.Fatal(err)
		}
		_, llDij, err := MLTrajectoryDijkstra(c, T, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(llDP-llDij) > 1e-9 {
			t.Fatalf("seed %d: DP LL %v != Dijkstra LL %v", seed, llDP, llDij)
		}
	}
}

func TestMLTrajectoryExclusions(t *testing.T) {
	c := markov.MustNew([][]float64{
		{0.1, 0.8, 0.1},
		{0.05, 0.9, 0.05},
		{0.1, 0.8, 0.1},
	})
	excl := NewExclusionSet()
	excl.Add(1, 3) // dominant state forbidden at slot 3
	tr, _, err := MLTrajectory(c, 6, excl)
	if err != nil {
		t.Fatal(err)
	}
	if tr[3] == 1 {
		t.Fatalf("slot 3 uses excluded cell: %v", tr)
	}
	trD, _, err := MLTrajectoryDijkstra(c, 6, excl)
	if err != nil {
		t.Fatal(err)
	}
	if trD[3] == 1 {
		t.Fatalf("dijkstra slot 3 uses excluded cell: %v", trD)
	}
}

func TestMLTrajectoryInfeasible(t *testing.T) {
	c := randomChain(rng.New(1), 3)
	excl := NewExclusionSet()
	for x := 0; x < 3; x++ {
		excl.Add(x, 2)
	}
	if _, _, err := MLTrajectory(c, 5, excl); err == nil {
		t.Fatal("fully excluded slot accepted")
	}
	if _, _, err := MLTrajectoryDijkstra(c, 5, excl); err == nil {
		t.Fatal("fully excluded slot accepted (dijkstra)")
	}
}

func TestMLTrajectoryArgValidation(t *testing.T) {
	c := randomChain(rng.New(1), 3)
	if _, _, err := MLTrajectory(c, 0, nil); err == nil {
		t.Fatal("T=0 accepted")
	}
	if _, _, err := MLTrajectoryDijkstra(c, -1, nil); err == nil {
		t.Fatal("T<0 accepted (dijkstra)")
	}
}

func TestExclusionSet(t *testing.T) {
	var nilSet *ExclusionSet
	if nilSet.Excluded(0, 0) {
		t.Fatal("nil set excludes")
	}
	if nilSet.Len() != 0 {
		t.Fatal("nil set non-empty")
	}
	e := NewExclusionSet()
	e.Add(3, 7)
	e.Add(3, 7) // duplicate
	e.Add(2, 7)
	if !e.Excluded(3, 7) || !e.Excluded(2, 7) || e.Excluded(3, 6) {
		t.Fatal("membership wrong")
	}
	if e.Len() != 2 {
		t.Fatalf("Len = %d, want 2", e.Len())
	}
}

func TestMLTrajectoryDeterministicTieBreak(t *testing.T) {
	// Fully symmetric chain: every trajectory has identical likelihood;
	// the lowest-index path must be returned, deterministically.
	n := 4
	p := make([][]float64, n)
	for i := range p {
		row := make([]float64, n)
		for j := range row {
			row[j] = 1 / float64(n)
		}
		p[i] = row
	}
	c := markov.MustNew(p)
	tr1, _, err := MLTrajectory(c, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr2, _, _ := MLTrajectory(c, 8, nil)
	if !tr1.Equal(tr2) {
		t.Fatal("ML trajectory not deterministic")
	}
	for slot, x := range tr1 {
		if x != 0 {
			t.Fatalf("slot %d = %d, want 0 (lowest-index tie break)", slot, x)
		}
	}
}
