// Package tune makes the engine's block geometry a measured choice
// instead of a constant. The batch hot path's throughput depends on how
// many Monte-Carlo runs travel per dispatch chunk (the scoring tile's
// working set, the sampling bank's stride and the per-chunk dispatch
// overhead all scale with it), and the best width depends on the live
// kernel shape — chain size n, trajectories per run U, horizon T — and
// on the host's cache hierarchy. Rather than hard-coding one width,
// BlockSize micro-benchmarks the actual tiled scoring kernel over the
// candidate widths {16, 32, 64, 128, 256} at startup and returns the
// fastest.
//
// A calibration is cheap (a bounded lane-slot budget per candidate, a
// few milliseconds total) but not free, so choices are cached twice
// over: in-process per (n, U, T), and — when an artifact store is
// configured — persistently per (version, GOARCH, n, U, T), so a host
// measures each kernel shape once, not once per process. Remove the
// store's "tune" kind (`rm -r $CHAFFMEC_STORE/tune`) to force
// re-measurement, or pin a width for every shape with CHAFFMEC_BLOCK.
//
// Calibration never touches result streams: block width only changes
// how many runs travel per chunk, and engine results are bit-identical
// at any chunking (streams are pure functions of (seed, run) and
// accumulation is run-ordered). The measurement itself draws from a
// fixed local rng stream unrelated to any experiment's seed.
package tune

import (
	"encoding/json"
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"

	"chaffmec/internal/detect"
	"chaffmec/internal/markov"
	"chaffmec/internal/rng"
	"chaffmec/internal/store"
)

// Candidates are the block widths BlockSize measures, in measurement
// order. 256 matches the engine's dispatch clamp; widths below 16 pay
// more dispatch overhead than any cache effect can buy back.
var Candidates = [...]int{16, 32, 64, 128, 256}

// DefaultBlockSize is returned when measurement is impossible (nil
// chain, degenerate geometry): the engine dispatch cap, matching the
// pre-calibration behavior of large experiments.
const DefaultBlockSize = 256

// calibVersion keys persisted calibrations; bump it when the
// measurement methodology changes so stale store entries stop hitting.
const calibVersion = "blockgeom-v1"

// storeKind namespaces calibrations in the artifact store.
const storeKind = "tune"

// calibSeed feeds the measurement block's trajectories. It is a local
// constant: calibration trajectories exist only to exercise the kernel's
// memory-access pattern and never touch experiment streams.
const calibSeed = 0x7e57b10c

// laneSlotBudget bounds the work per candidate: roughly
// laneSlotBudget lane-slots are scored per width (split over
// calibPasses timing passes, best pass kept), keeping a full
// calibration in the low milliseconds.
const laneSlotBudget = 1 << 17

// calibPasses is how many timing passes each candidate gets; the
// minimum is kept, damping scheduler noise without a larger budget.
const calibPasses = 3

// calibHorizon caps the measured horizon: the per-slot working set
// depends on B·U, not on T, so long experiments calibrate on a
// truncated horizon instead of scoring millions of slots.
const calibHorizon = 64

// Candidate is one measured width of a Sweep.
type Candidate struct {
	BlockSize     int     `json:"block_size"`
	NsPerLaneSlot float64 `json:"ns_per_lane_slot"`
}

type geomKey struct{ n, u, t int }

var cache sync.Map // geomKey → int

// envBlock reads the CHAFFMEC_BLOCK pin once per process.
var envBlock = sync.OnceValue(parseEnvBlock)

// parseEnvBlock parses the CHAFFMEC_BLOCK pin: a width in [1, 256], or
// 0 (ignored) when unset or nonsense.
func parseEnvBlock() int {
	v := os.Getenv("CHAFFMEC_BLOCK")
	if v == "" {
		return 0
	}
	b, err := strconv.Atoi(v)
	if err != nil || b < 1 || b > 256 {
		return 0
	}
	return b
}

// BlockSize returns the calibrated engine dispatch width for the kernel
// shape (chain, U trajectories per run, horizon T): the CHAFFMEC_BLOCK
// pin if set, else the cached measurement for this shape, measuring and
// caching (in-process, and in the artifact store when one is
// configured) on first use.
func BlockSize(chain *markov.Chain, U, T int) int {
	if b := envBlock(); b > 0 {
		return b
	}
	if chain == nil || U < 1 || T < 2 {
		return DefaultBlockSize
	}
	key := geomKey{chain.NumStates(), U, T}
	if v, ok := cache.Load(key); ok {
		return v.(int)
	}
	b := loadOrMeasure(chain, U, T)
	cache.Store(key, b)
	return b
}

// storeKey is a calibration's content address. GOARCH is part of the
// key so a store shared across architectures does not cross-pollinate;
// same-arch hosts with different cache hierarchies are close enough
// that sharing beats re-measuring.
func storeKey(n, U, T int) string {
	return store.Key(calibVersion, runtime.GOARCH,
		strconv.Itoa(n), strconv.Itoa(U), strconv.Itoa(T))
}

type storedCalib struct {
	BlockSize int         `json:"block_size"`
	Sweep     []Candidate `json:"sweep,omitempty"`
}

// loadOrMeasure consults the artifact store before paying for a
// measurement; store failures never fail the caller — a blob that won't
// decode or proposes a nonsense width is evicted and re-measured, and
// persisting a fresh measurement is best-effort.
func loadOrMeasure(chain *markov.Chain, U, T int) int {
	st := store.Default()
	var key string
	if st != nil {
		key = storeKey(chain.NumStates(), U, T)
		if blob, ok, err := st.Get(storeKind, key); err == nil && ok {
			var c storedCalib
			if err := json.Unmarshal(blob, &c); err == nil && validWidth(c.BlockSize) {
				return c.BlockSize
			}
			st.Delete(storeKind, key)
		}
	}
	sweep := Sweep(chain, U, T)
	best := pick(sweep)
	if st != nil {
		if blob, err := json.Marshal(storedCalib{BlockSize: best, Sweep: sweep}); err == nil {
			st.Put(storeKind, key, blob)
		}
	}
	return best
}

func validWidth(b int) bool {
	for _, c := range Candidates {
		if b == c {
			return true
		}
	}
	return false
}

// pick selects the fastest measured width, breaking ties toward the
// smaller one (smaller blocks cancel faster and balance load better at
// equal throughput).
func pick(sweep []Candidate) int {
	best, bestNs := DefaultBlockSize, 0.0
	for _, c := range sweep {
		if c.NsPerLaneSlot <= 0 {
			continue
		}
		if bestNs == 0 || c.NsPerLaneSlot < bestNs {
			best, bestNs = c.BlockSize, c.NsPerLaneSlot
		}
	}
	return best
}

// Sweep measures every candidate width against the live chain and
// kernel shape and returns the per-width timings — the raw data behind
// BlockSize, exported for the kernel benchmark's geometry sweep. The
// measured kernel is the tiled ML block scorer (the batch hot path's
// dominant cost); trajectories are drawn once per width from a fixed
// calibration stream.
func Sweep(chain *markov.Chain, U, T int) []Candidate {
	if chain == nil || U < 1 || T < 2 {
		return nil
	}
	if T > calibHorizon {
		T = calibHorizon
	}
	det := detect.NewMLDetector(chain)
	out := make([]Candidate, 0, len(Candidates))
	for _, B := range Candidates {
		ns := measure(chain, det, B, U, T)
		out = append(out, Candidate{BlockSize: B, NsPerLaneSlot: ns})
	}
	return out
}

// measure times reps tiled sweeps of a B×U×T block and returns the best
// pass's ns per lane-slot (0 when the kernel shape cannot be scored).
func measure(chain *markov.Chain, det *detect.MLDetector, B, U, T int) float64 {
	ws := detect.GetWorkspace()
	defer ws.Release()
	blk := ws.Block(B, U, T)

	// Trajectories come from one fixed calibration stream: the kernel's
	// real gather pattern is what matters, not distinct run streams.
	src := rng.New(calibSeed)
	tr := make(markov.Trajectory, T)
	for r := 0; r < B; r++ {
		for u := 0; u < U; u++ {
			if err := chain.SampleInto(src, tr); err != nil {
				return 0
			}
			if err := blk.SetTrajectory(r, u, tr); err != nil {
				return 0
			}
		}
	}

	laneSlots := B * U * T
	reps := laneSlotBudget / (calibPasses * laneSlots)
	if reps < 1 {
		reps = 1
	}
	if err := det.ScoreBlock(blk, 0); err != nil { // warm caches, surface errors
		return 0
	}
	best := time.Duration(0)
	for pass := 0; pass < calibPasses; pass++ {
		begin := time.Now()
		for i := 0; i < reps; i++ {
			if err := det.ScoreBlock(blk, 0); err != nil {
				return 0
			}
		}
		d := time.Since(begin)
		if best == 0 || d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds()) / float64(reps*laneSlots)
}

// ResetForTest drops the in-process calibration cache so tests can
// force re-measurement (the store cache is bypassed by running without
// a configured store).
func ResetForTest() {
	cache.Range(func(k, _ any) bool {
		cache.Delete(k)
		return true
	})
}
