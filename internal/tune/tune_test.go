package tune

import (
	"encoding/json"
	"testing"

	"chaffmec/internal/markov"
	"chaffmec/internal/store"
)

func testChain(t *testing.T) *markov.Chain {
	t.Helper()
	return markov.MustNew([][]float64{
		{0.25, 0.25, 0.25, 0.25},
		{0.1, 0.2, 0.3, 0.4},
		{0.4, 0.3, 0.2, 0.1},
		{0.5, 0, 0.5, 0},
	})
}

func TestBlockSizeReturnsCandidate(t *testing.T) {
	ResetForTest()
	c := testChain(t)
	b := BlockSize(c, 4, 50)
	if !validWidth(b) {
		t.Fatalf("BlockSize = %d, not a candidate width %v", b, Candidates)
	}
}

func TestBlockSizeCachedInProcess(t *testing.T) {
	ResetForTest()
	c := testChain(t)
	first := BlockSize(c, 3, 40)
	for i := 0; i < 5; i++ {
		if got := BlockSize(c, 3, 40); got != first {
			t.Fatalf("cached BlockSize changed: %d then %d", first, got)
		}
	}
}

func TestBlockSizeDegenerateShapes(t *testing.T) {
	ResetForTest()
	c := testChain(t)
	if got := BlockSize(nil, 4, 50); got != DefaultBlockSize {
		t.Fatalf("nil chain: %d, want default %d", got, DefaultBlockSize)
	}
	if got := BlockSize(c, 0, 50); got != DefaultBlockSize {
		t.Fatalf("U=0: %d, want default %d", got, DefaultBlockSize)
	}
	if got := BlockSize(c, 4, 1); got != DefaultBlockSize {
		t.Fatalf("T=1: %d, want default %d", got, DefaultBlockSize)
	}
}

func TestEnvPinOverrides(t *testing.T) {
	// envBlock is computed once per process, so pin via the cache-free
	// parse path: set the variable and verify through a fresh read.
	t.Setenv("CHAFFMEC_BLOCK", "48")
	if got := parseEnvBlock(); got != 48 {
		t.Fatalf("CHAFFMEC_BLOCK=48 parsed as %d", got)
	}
	t.Setenv("CHAFFMEC_BLOCK", "0")
	if got := parseEnvBlock(); got != 0 {
		t.Fatalf("CHAFFMEC_BLOCK=0 parsed as %d, want 0 (ignored)", got)
	}
	t.Setenv("CHAFFMEC_BLOCK", "9999")
	if got := parseEnvBlock(); got != 0 {
		t.Fatalf("CHAFFMEC_BLOCK=9999 parsed as %d, want 0 (ignored)", got)
	}
	t.Setenv("CHAFFMEC_BLOCK", "nonsense")
	if got := parseEnvBlock(); got != 0 {
		t.Fatalf("CHAFFMEC_BLOCK=nonsense parsed as %d, want 0 (ignored)", got)
	}
}

// TestStoreRoundTrip proves a second process-equivalent lookup (fresh
// in-process cache, same store) reuses the persisted calibration
// instead of re-measuring, and that a corrupt blob is evicted and
// re-measured.
func TestStoreRoundTrip(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	old := store.Default()
	store.SetDefault(st)
	defer store.SetDefault(old)

	ResetForTest()
	c := testChain(t)
	first := BlockSize(c, 4, 30)

	key := storeKey(c.NumStates(), 4, 30)
	blob, ok, err := st.Get(storeKind, key)
	if err != nil || !ok {
		t.Fatalf("calibration not persisted: ok=%v err=%v", ok, err)
	}
	var persisted storedCalib
	if err := json.Unmarshal(blob, &persisted); err != nil {
		t.Fatalf("persisted calibration does not decode: %v", err)
	}
	if persisted.BlockSize != first {
		t.Fatalf("persisted %d, returned %d", persisted.BlockSize, first)
	}
	if len(persisted.Sweep) != len(Candidates) {
		t.Fatalf("persisted sweep has %d entries, want %d", len(persisted.Sweep), len(Candidates))
	}

	// Fresh in-process cache: the store must satisfy the lookup. Plant a
	// distinctive (valid) width to prove the value comes from the store.
	planted := storedCalib{BlockSize: 32}
	if persisted.BlockSize == 32 {
		planted.BlockSize = 128
	}
	pb, _ := json.Marshal(planted)
	if err := st.Put(storeKind, key, pb); err != nil {
		t.Fatal(err)
	}
	ResetForTest()
	if got := BlockSize(c, 4, 30); got != planted.BlockSize {
		t.Fatalf("store lookup returned %d, want planted %d", got, planted.BlockSize)
	}

	// Corrupt blob: evicted, re-measured, re-persisted.
	if err := st.Put(storeKind, key, []byte("not json")); err != nil {
		t.Fatal(err)
	}
	ResetForTest()
	if got := BlockSize(c, 4, 30); !validWidth(got) {
		t.Fatalf("corrupt-store remeasure returned %d", got)
	}
	if blob, ok, _ := st.Get(storeKind, key); !ok || !json.Valid(blob) {
		t.Fatal("corrupt calibration was not replaced")
	}
}

func TestSweepShape(t *testing.T) {
	c := testChain(t)
	sweep := Sweep(c, 2, 20)
	if len(sweep) != len(Candidates) {
		t.Fatalf("sweep has %d entries, want %d", len(sweep), len(Candidates))
	}
	for i, cand := range sweep {
		if cand.BlockSize != Candidates[i] {
			t.Fatalf("sweep[%d].BlockSize = %d, want %d", i, cand.BlockSize, Candidates[i])
		}
		if cand.NsPerLaneSlot <= 0 {
			t.Fatalf("sweep[%d] measured %v ns/lane-slot", i, cand.NsPerLaneSlot)
		}
	}
	if Sweep(nil, 2, 20) != nil {
		t.Fatal("nil chain sweep should be nil")
	}
}

func TestPickPrefersFastestThenSmallest(t *testing.T) {
	got := pick([]Candidate{{16, 3.0}, {32, 2.0}, {64, 2.0}, {128, 2.5}})
	if got != 32 {
		t.Fatalf("pick = %d, want 32 (fastest, ties to smaller)", got)
	}
	if got := pick(nil); got != DefaultBlockSize {
		t.Fatalf("pick(nil) = %d, want default", got)
	}
	if got := pick([]Candidate{{16, 0}, {32, 0}}); got != DefaultBlockSize {
		t.Fatalf("pick(all-zero) = %d, want default", got)
	}
}
